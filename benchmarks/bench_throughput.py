"""Simulator throughput benchmarks (engineering, not paper-reproduction).

Two entry points over one measurement core:

1. **Standalone / CI** — emits a machine-readable ``BENCH_throughput.json``
   baseline (accesses/sec per kernelized policy, reference vs per-access
   kernel vs trace-level adaptive kernel, with bit-equality bits per row)
   so the perf trajectory is diffable::

       python benchmarks/bench_throughput.py --json BENCH_throughput.json
       python benchmarks/bench_throughput.py --check          # CI gate

   ``--check`` exits non-zero unless (a) every kernel run is bit-identical
   to its reference run, (b) the HeatSinkLRU trace-level kernel clears the
   hit-heavy gate (default >= 10x) on the *hot* trace, (c) the HeatSinkLRU
   per-access kernel still clears its historical gate (>= 3x) on the
   *turnover* trace, and (d) the adaptive driver does not regress the
   per-access kernel on turnover (>= 0.95x — the probe must bail cheaply).

2. **pytest-benchmark** — the historical per-policy timing matrix, now
   with reference/kernel variants::

       pytest benchmarks/bench_throughput.py --benchmark-only

Three workloads are measured. ``hot`` (Zipf α=1.0 over n/2 pages) is the
serving regime: the working set fits, steady-state misses are rare, and
the trace-level kernels consume whole hit-runs with vectorized probes —
this is where the >= 10x contract lives. ``warm`` (Zipf α=1.0 over 8n
pages) mixes hit-runs with regular misses, exercising the scan/per-access
stitching. ``turnover`` (Zipf α=0.6 over 16n pages) keeps the miss rate
near the adversarial sweeps' (~0.8): every access pays hashing, coins,
and eviction, the per-access kernels' home turf — the adaptive driver's
probe must detect this regime and stay out of the scan path.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

import repro
from repro.sim.kernels import available_kernels
from repro.sim.kernels.heatsink import run_heatsink
from repro.sim.kernels.slotted import run_drandom, run_plru
from repro.traces.base import as_page_array

CAPACITY = 1_024

#: policies with registered kernels: the reference-vs-kernel comparison set
KERNEL_POLICIES = {
    "heatsink": lambda: repro.HeatSinkLRU.from_epsilon(CAPACITY, 0.25, seed=1),
    "2-lru": lambda: repro.PLruCache(CAPACITY, d=2, seed=1),
    "2-random": lambda: repro.DRandomCache(CAPACITY, d=2, seed=1),
    "set-assoc": lambda: repro.SetAssociativeLRU(CAPACITY, d=8, seed=1),
}

#: the per-access kernel entry point for each policy (the pre-trace-level
#: fast path, timed directly so the adaptive driver can be gated against it)
PER_ACCESS_KERNELS = {
    "heatsink": run_heatsink,
    "2-lru": run_plru,
    "2-random": run_drandom,
    "set-assoc": run_plru,
}

#: reference-only baselines kept for the historical pytest timing matrix
REFERENCE_POLICIES = {
    "lru": lambda: repro.LRUCache(CAPACITY),
    "fifo": lambda: repro.FIFOCache(CAPACITY),
    "clock": lambda: repro.ClockCache(CAPACITY),
    "lfu": lambda: repro.LFUCache(CAPACITY),
    "arc": lambda: repro.ARCCache(CAPACITY),
    "sieve": lambda: repro.SieveCache(CAPACITY),
    "opt": lambda: repro.BeladyCache(CAPACITY),
}

#: the --check contract rows
HOT_GATE_ROW = "heatsink/hot"
TURNOVER_GATE_ROW = "heatsink/turnover"
#: adaptive may not regress the per-access kernel on miss-heavy traces by
#: more than measurement noise; the probe's real overhead is ~2%, but
#: back-to-back wall-clock runs of identical code jitter by ~5-8%, so the
#: floor leaves room for noise without letting a scan-path misfire through
ADAPTIVE_FLOOR = 0.90


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _blas_info():
    """Best-effort BLAS/thread context (schema parity with BENCH_service's
    ``event_loop``: the knob that moves numbers between hosts)."""
    try:
        from threadpoolctl import threadpool_info  # optional, never required

        return [
            {key: pool.get(key) for key in ("user_api", "internal_api", "num_threads")}
            for pool in threadpool_info()
        ]
    except Exception:
        pass
    try:
        blas = np.__config__.CONFIG["Build Dependencies"]["blas"]
        return {"name": blas.get("name"), "found": blas.get("found")}
    except Exception:
        return None


def make_traces(length: int) -> dict[str, "repro.Trace"]:
    return {
        "hot": repro.zipf_trace(CAPACITY // 2, length, alpha=1.0, seed=1),
        "warm": repro.zipf_trace(8 * CAPACITY, length, alpha=1.0, seed=1),
        "turnover": repro.zipf_trace(16 * CAPACITY, length, alpha=0.6, seed=1),
    }


def _best_seconds(run_once, repeats: int) -> tuple[float, "repro.SimResult"]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_once()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_suite(length: int, repeats: int) -> dict:
    """Measure every kernelized policy on every workload; JSON-ready dict."""
    traces = make_traces(length)
    rows: dict[str, dict] = {}
    for trace_name, trace in traces.items():
        pages = as_page_array(trace)
        for policy_name, factory in KERNEL_POLICIES.items():
            per_access = PER_ACCESS_KERNELS[policy_name]

            def run_per_access():
                policy = factory()
                policy.reset()
                return per_access(policy, pages)

            ref_s, ref = _best_seconds(lambda: factory().run(pages, fast=False), repeats)
            pa_s, pa = _best_seconds(run_per_access, repeats)
            tl_s, tl = _best_seconds(lambda: factory().run(pages, fast=True), repeats)
            pa_identical = bool(np.array_equal(ref.hits, pa.hits))
            tl_identical = bool(np.array_equal(ref.hits, tl.hits))
            rows[f"{policy_name}/{trace_name}"] = {
                "reference_aps": length / ref_s,
                "peraccess_aps": length / pa_s,
                "tracelevel_aps": length / tl_s,
                "peraccess_speedup": ref_s / pa_s,
                "tracelevel_speedup": ref_s / tl_s,
                "adaptive_vs_peraccess": pa_s / tl_s,
                "miss_rate": ref.miss_rate,
                "peraccess_identical": pa_identical,
                "tracelevel_identical": tl_identical,
                "identical": pa_identical and tl_identical,
            }
    return {
        "schema": 2,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": _available_cpus(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "capacity": CAPACITY,
        "trace_length": length,
        "repeats": repeats,
        "kernels": available_kernels(),
        "hot_gate_row": HOT_GATE_ROW,
        "turnover_gate_row": TURNOVER_GATE_ROW,
        "results": rows,
    }


def check(
    report: dict,
    *,
    hot_threshold: float = 10.0,
    turnover_threshold: float = 3.0,
) -> bool:
    """CI gates:

    1. every row is bit-identical to the reference loop, on both the
       per-access and the trace-level path;
    2. ``heatsink/hot`` trace-level kernel >= ``hot_threshold`` x reference
       (the hit-run scan has to pay for itself where hits dominate);
    3. ``heatsink/turnover`` per-access kernel >= ``turnover_threshold`` x
       reference (the historical miss-heavy contract still holds);
    4. ``heatsink/turnover`` adaptive >= ``turnover_threshold`` x reference
       AND >= ADAPTIVE_FLOOR x the per-access kernel (the probe must
       detect the miss-heavy regime and bail without giving the win back).
    """
    ok = True
    for name, row in report["results"].items():
        flag = "" if row["identical"] else "  <-- NOT BIT-IDENTICAL"
        if not row["identical"]:
            ok = False
        print(
            f"{name:20s} ref {row['reference_aps']:>12,.0f} acc/s   "
            f"per-access {row['peraccess_speedup']:5.2f}x   "
            f"trace-level {row['tracelevel_speedup']:6.2f}x   "
            f"miss {row['miss_rate']:.3f}{flag}"
        )
    hot = report["results"][HOT_GATE_ROW]
    verdict = "OK" if hot["tracelevel_speedup"] >= hot_threshold else "FAIL"
    print(
        f"gate: {HOT_GATE_ROW} trace-level speedup {hot['tracelevel_speedup']:.2f}x "
        f"vs bound {hot_threshold:.1f}x -> {verdict}"
    )
    ok = ok and hot["tracelevel_speedup"] >= hot_threshold

    turnover = report["results"][TURNOVER_GATE_ROW]
    verdict = "OK" if turnover["peraccess_speedup"] >= turnover_threshold else "FAIL"
    print(
        f"gate: {TURNOVER_GATE_ROW} per-access speedup "
        f"{turnover['peraccess_speedup']:.2f}x vs bound {turnover_threshold:.1f}x "
        f"-> {verdict}"
    )
    ok = ok and turnover["peraccess_speedup"] >= turnover_threshold

    adaptive_ok = (
        turnover["tracelevel_speedup"] >= turnover_threshold
        and turnover["adaptive_vs_peraccess"] >= ADAPTIVE_FLOOR
    )
    verdict = "OK" if adaptive_ok else "FAIL"
    print(
        f"gate: {TURNOVER_GATE_ROW} adaptive is "
        f"{turnover['tracelevel_speedup']:.2f}x reference "
        f"(bound >= {turnover_threshold:.1f}x) and "
        f"{turnover['adaptive_vs_peraccess']:.2f}x per-access "
        f"(bound >= {ADAPTIVE_FLOOR:.2f}x) -> {verdict}"
    )
    return ok and adaptive_ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=1_000_000, help="trace length")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--json", nargs="?", const="BENCH_throughput.json", default=None,
        metavar="PATH", help="write the JSON report (default path when bare)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless bit-identical and the speedup gates hold",
    )
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="hot-trace trace-level speedup gate",
    )
    parser.add_argument(
        "--turnover-threshold", type=float, default=3.0,
        help="turnover-trace per-access speedup gate",
    )
    args = parser.parse_args(argv)

    report = run_suite(args.length, args.repeats)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    passed = check(
        report,
        hot_threshold=args.threshold,
        turnover_threshold=args.turnover_threshold,
    )
    return 0 if (passed or not args.check) else 1


# -- pytest-benchmark entry points -------------------------------------------

import pytest  # noqa: E402

_PYTEST_LENGTH = 50_000
_PYTEST_TRACE = repro.zipf_trace(8 * CAPACITY, _PYTEST_LENGTH, alpha=1.0, seed=1)


@pytest.mark.parametrize("name", sorted(REFERENCE_POLICIES))
def test_policy_throughput(benchmark, name):
    factory = REFERENCE_POLICIES[name]

    def run_once():
        return factory().run(_PYTEST_TRACE)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    assert result.num_accesses == _PYTEST_LENGTH
    benchmark.extra_info["accesses_per_second"] = _PYTEST_LENGTH / benchmark.stats["mean"]
    benchmark.extra_info["miss_rate"] = result.miss_rate


@pytest.mark.parametrize("name", sorted(KERNEL_POLICIES))
@pytest.mark.parametrize("path", ["reference", "kernel"])
def test_kernelized_throughput(benchmark, name, path):
    factory = KERNEL_POLICIES[name]
    fast = path == "kernel"

    def run_once():
        return factory().run(_PYTEST_TRACE, fast=fast)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    assert result.num_accesses == _PYTEST_LENGTH
    benchmark.extra_info["accesses_per_second"] = _PYTEST_LENGTH / benchmark.stats["mean"]
    benchmark.extra_info["miss_rate"] = result.miss_rate


if __name__ == "__main__":
    sys.exit(main())
