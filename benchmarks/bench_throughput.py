"""Simulator throughput benchmarks (engineering, not paper-reproduction).

Times each policy's bulk ``run`` on a fixed Zipf trace so regressions in
the simulation inner loops are visible. These are the only benches where
the *timing* is the product; the ``bench_*`` experiment modules report
rows and use timing only as bookkeeping.
"""

from __future__ import annotations

import pytest

import repro

CAPACITY = 1_024
LENGTH = 50_000
TRACE = repro.zipf_trace(8 * CAPACITY, LENGTH, alpha=1.0, seed=1)

POLICIES = {
    "lru": lambda: repro.LRUCache(CAPACITY),
    "fifo": lambda: repro.FIFOCache(CAPACITY),
    "clock": lambda: repro.ClockCache(CAPACITY),
    "lfu": lambda: repro.LFUCache(CAPACITY),
    "arc": lambda: repro.ARCCache(CAPACITY),
    "sieve": lambda: repro.SieveCache(CAPACITY),
    "opt": lambda: repro.BeladyCache(CAPACITY),
    "2-lru": lambda: repro.PLruCache(CAPACITY, d=2, seed=1),
    "2-random": lambda: repro.DRandomCache(CAPACITY, d=2, seed=1),
    "set-assoc": lambda: repro.SetAssociativeLRU(CAPACITY, d=8, seed=1),
    "heatsink": lambda: repro.HeatSinkLRU.from_epsilon(CAPACITY, 0.25, seed=1),
}


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_policy_throughput(benchmark, name):
    factory = POLICIES[name]

    def run_once():
        return factory().run(TRACE)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    assert result.num_accesses == LENGTH
    benchmark.extra_info["accesses_per_second"] = LENGTH / benchmark.stats["mean"]
    benchmark.extra_info["miss_rate"] = result.miss_rate
