"""Open-loop SLO benchmark: latency-under-SLO at a fixed offered rate.

``bench_service.py`` measures *throughput* — how fast the closed-loop
generator can push the stack. This file measures the question an SLO
actually asks: at a fixed, modest offered rate, what latency tail do
clients see, and what fraction of requests violate the bound? The
generator is :mod:`repro.service.openloop` (Poisson / bursty arrivals,
latency measured from scheduled arrival, scheduler-lag self-check), so
coordinated omission cannot flatter the numbers.

Two entry points over one measurement core:

1. **Standalone / CI** — emits a machine-readable ``BENCH_slo.json``
   baseline (one row per arrival shape) so the tail-latency trajectory
   is diffable::

       python benchmarks/bench_slo.py --json BENCH_slo.json
       python benchmarks/bench_slo.py --check          # CI gate

   ``--check`` exits non-zero unless every row satisfies the SLO
   contract: generator lag within bounds (``lag_ok``, else the run
   measured the loadgen and is void) and the violation fraction at the
   default 50 ms SLO at or under ``--max-violations`` (default 1 %).
   The offered rate is deliberately conservative — far below the
   closed-loop ceiling recorded in ``BENCH_service.json`` — because the
   gate certifies *latency under feasible load*, not peak throughput.

2. **pytest-benchmark** — per-shape timing::

       pytest benchmarks/bench_slo.py --benchmark-only

The rows share one offered rate and differ only in arrival shape:
``burst=1`` (Poisson) and ``burst=4`` (geometric clumps at the same
long-run rate). The bursty row is the adversarial one — clumps land
simultaneously and queue — so its p99 bounds the steady row's.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time

import repro
from repro.service.openloop import open_loop_replay
from repro.service.server import running_server
from repro.service.sharding import ShardedPolicyStore

CAPACITY = 1_024
POLICY = "heatsink"
OPS = 4_000
RATE = 1_000.0  # req/s — feasible by construction, see module docstring
SLO_MS = 50.0
CONNECTIONS = 4
FRAME = "binary"

#: arrival shapes benchmarked (and gated) at the shared offered rate
BURSTS = (1.0, 4.0)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_trace(length: int) -> "repro.Trace":
    return repro.zipf_trace(8 * CAPACITY, length, alpha=1.0, seed=1)


def _open_loop_once(trace, *, rate: float, burst: float, slo_ms: float):
    async def scenario():
        store = ShardedPolicyStore.build(POLICY, CAPACITY, shards=1, seed=1)
        async with running_server(store) as server:
            return await open_loop_replay(
                trace,
                host="127.0.0.1",
                port=server.port,
                rate=rate,
                burst=burst,
                connections=CONNECTIONS,
                frame=FRAME,
                slo_ms=slo_ms,
                seed=1,
            )

    return asyncio.run(scenario())


def _best_report(trace, *, rate: float, burst: float, slo_ms: float, repeats: int):
    """Best-of-N by p99 (fresh server per run) among runs whose generator
    kept up; falls back to the least-lagged run if none did."""
    best = fallback = None
    for _ in range(repeats):
        report = _open_loop_once(trace, rate=rate, burst=burst, slo_ms=slo_ms)
        assert report.ops == len(trace)
        if fallback is None or report.lag_p99_ms < fallback.lag_p99_ms:
            fallback = report
        if report.lag_ok and (best is None or report.p99_ms < best.p99_ms):
            best = report
    return best if best is not None else fallback


def run_suite(length: int, repeats: int, *, rate: float, slo_ms: float) -> dict:
    """Measure every arrival shape; JSON-ready dict."""
    trace = make_trace(length)
    rows: dict[str, dict] = {}
    for burst in BURSTS:
        report = _best_report(
            trace, rate=rate, burst=burst, slo_ms=slo_ms, repeats=repeats
        )
        rows[f"rate={rate:g}/burst={burst:g}"] = report.as_dict()
    return {
        "schema": 1,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": _available_cpus(),
        "policy": POLICY,
        "capacity": CAPACITY,
        "trace_length": length,
        "repeats": repeats,
        "connections": CONNECTIONS,
        "frame": FRAME,
        "slo_ms": slo_ms,
        "results": rows,
    }


def check(report: dict, *, max_violations: float = 0.01) -> bool:
    """CI gate: every row must have kept the generator honest (``lag_ok``)
    and kept SLO violations at or under ``max_violations``."""
    passed = True
    for name, row in report["results"].items():
        ok = row["lag_ok"] and row["violation_fraction"] <= max_violations
        passed = passed and ok
        verdict = "OK" if ok else ("FAIL" if row["lag_ok"] else "FAIL (generator lagged)")
        print(
            f"{name:24s} p50 {row['p50_ms']:7.3f}ms  p99 {row['p99_ms']:7.3f}ms  "
            f"p99.9 {row['p999_ms']:7.3f}ms  "
            f"viol {100 * row['violation_fraction']:.3f}%  "
            f"lag p99 {row['lag_p99_ms']:.3f}ms -> {verdict}"
        )
    print(
        f"gate: violation fraction <= {100 * max_violations:g}% at "
        f"SLO {report['slo_ms']:g}ms, generator lag within bounds -> "
        f"{'OK' if passed else 'FAIL'}"
    )
    return passed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=OPS, help="requests per row")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--rate", type=float, default=RATE, help="offered req/s")
    parser.add_argument("--slo", type=float, default=SLO_MS, metavar="MS", help="SLO bound")
    parser.add_argument(
        "--max-violations", type=float, default=0.01,
        help="gate: max tolerated violation fraction (default 0.01)",
    )
    parser.add_argument(
        "--json", nargs="?", const="BENCH_slo.json", default=None,
        metavar="PATH", help="write the JSON report (default path when bare)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every row meets the SLO contract",
    )
    args = parser.parse_args(argv)

    report = run_suite(args.length, args.repeats, rate=args.rate, slo_ms=args.slo)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    passed = check(report, max_violations=args.max_violations)
    return 0 if (passed or not args.check) else 1


# -- pytest-benchmark entry points -------------------------------------------

import pytest  # noqa: E402

_PYTEST_TRACE = make_trace(OPS)


@pytest.mark.parametrize("burst", BURSTS)
def test_open_loop_slo(benchmark, burst):
    report = benchmark.pedantic(
        lambda: _open_loop_once(_PYTEST_TRACE, rate=RATE, burst=burst, slo_ms=SLO_MS),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert report.ops == OPS
    benchmark.extra_info["p99_ms"] = report.p99_ms
    benchmark.extra_info["violation_fraction"] = report.violation_fraction
    benchmark.extra_info["lag_ok"] = report.lag_ok


if __name__ == "__main__":
    sys.exit(main())
