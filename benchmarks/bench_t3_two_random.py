"""Bench T3-TWORANDOM — regenerates the Theorem 3 (Part 2) evidence.

Paper claim: 2-RANDOM is ``(O(1), O(1))``-competitive with OPT. The rows
show bounded 2-RANDOM/OPT miss ratios across workloads, and — on the very
sequence that melts 2-LRU — 2-RANDOM's per-round misses decaying toward
zero (heat dissipation) while 2-LRU's persist.
"""

from __future__ import annotations

import math


def test_t3_two_random(experiment_bench):
    table = experiment_bench("T3-TWORANDOM")
    adversarial = [r for r in table if r["workload"].startswith("adversarial")]
    assert adversarial
    for row in adversarial:
        assert row["late_misses_per_round_2random"] < row["late_misses_per_round_2lru"]
    for row in table:
        if not row["workload"].startswith("adversarial"):
            assert row["ratio_2random_vs_opt"] < 3.0, row["workload"]
