"""Bench T4-ACCOUNTING — Theorem 4's proof quantities on live runs.

Rows: per-phase measurements of each lemma's subject (hot-page fraction
for Lemma 11, cool-pages-to-sink over ε²n for Lemma 10, hot-page misses
for Lemma 13) plus the bonus-point ledger and the end-to-end inequality.
The shape: every lemma's quantity sits far inside its bound on every
phase, and the TOTAL rows certify the theorem inequality.
"""

from __future__ import annotations


def test_t4_accounting(experiment_bench):
    table = experiment_bench("T4-ACCOUNTING")
    totals = [r for r in table if r["row"] == "TOTAL"]
    assert totals
    for row in totals:
        assert row["theorem_holds"], row
        # Lemma 11: hot pages are a small fraction of the working set
        assert row["max_hot_page_fraction"] < 0.25, row
        # Lemma 10: distinct cool pages entering the sink stay O(eps^2 n)
        assert row["max_cool_to_sink_over_eps2n"] < 8.0, row
