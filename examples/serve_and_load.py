"""Serve HEAT-SINK LRU over TCP and hammer it with a Zipf replay.

One process, three acts:

1. start a cache server on an ephemeral localhost port;
2. talk to it by hand (PUT/GET/DEL/STATS) to show the protocol;
3. replay a 100k-access Zipf trace through the load generator, in both
   the exact-order pipeline mode and the concurrent workers mode, and
   cross-check the pipelined hit rate against the offline simulator.

Run:  python examples/serve_and_load.py
"""

from __future__ import annotations

import asyncio

import repro
from repro.core.registry import make_policy
from repro.service import PolicyStore, ServiceClient, replay_trace, running_server

CAPACITY = 2_048
SEED = 42
TRACE = repro.zipf_trace(num_pages=8 * CAPACITY, length=100_000, alpha=1.0, seed=SEED)


async def main() -> None:
    store = PolicyStore(make_policy("heatsink", CAPACITY, seed=SEED))
    async with running_server(store) as server:
        print(f"serving {store.policy.name} on 127.0.0.1:{server.port}\n")

        # -- act 2: the protocol by hand ---------------------------------
        async with await ServiceClient.connect("127.0.0.1", server.port) as client:
            print("PUT 7  ->", await client.put(7, {"user": "ada"}))
            print("GET 7  ->", await client.get(7))
            print("DEL 7  ->", await client.delete(7))
            print("GET 7  ->", await client.get(7), "(resident, payload gone)")

    # -- act 3: trace replay against a fresh server (act 2's four manual
    # accesses already advanced the first policy's state, and exact parity
    # needs the policy to see the trace and nothing else) ----------------
    print("\npipelined replay (exact trace order):")
    store = PolicyStore(make_policy("heatsink", CAPACITY, seed=SEED))
    async with running_server(store) as server:
        report = await replay_trace(
            TRACE, host="127.0.0.1", port=server.port, mode="pipeline", concurrency=64
        )
    print(report.summary())

    offline = make_policy("heatsink", CAPACITY, seed=SEED).run(TRACE)
    print(f"\noffline hit rate  : {offline.hit_rate:.4f}")
    print(f"replayed hit rate : {report.hit_rate:.4f}")
    assert report.hits == offline.num_hits, "served replay diverged from simulator!"
    print("exact parity with the offline simulator ✓")

    print("\nconcurrent replay (8 worker connections):")
    fresh = PolicyStore(make_policy("heatsink", CAPACITY, seed=SEED))
    async with running_server(fresh) as server2:
        report2 = await replay_trace(
            TRACE, host="127.0.0.1", port=server2.port, mode="workers", concurrency=8
        )
    print(report2.summary())


if __name__ == "__main__":
    asyncio.run(main())
