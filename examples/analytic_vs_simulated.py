#!/usr/bin/env python
"""Three routes to a miss-rate curve: exact, sampled, and analytic.

For an IRM Zipf workload, computes the LRU miss-rate curve via:

1. **exact** single-pass stack distances (Mattson),
2. **SHARDS** spatial sampling at 10% (fast path for long traces),
3. the **Che approximation** (no trace at all — pure popularity math),

plus FIFO's analytic curve against its simulation. The three LRU routes
agree to ~1–2 % — the calibration that certifies both the simulator and
the analytic layer before either is trusted on the paper's experiments.

Run:  python examples/analytic_vs_simulated.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.mrc import exact_lru_mrc, sampled_lru_mrc
from repro.theory import fifo_hit_rate_irm, lru_hit_rate_irm, zipf_probabilities

NUM_PAGES = 16_384
LENGTH = 400_000
ALPHA = 0.9
SIZES = [256, 512, 1024, 2048, 4096, 8192]
SEED = 21


def main() -> None:
    # IRM trace: i.i.d. Zipf draws with identity rank->page mapping so the
    # analytic popularity vector is exactly the sampling law
    trace = repro.zipf_trace(NUM_PAGES, LENGTH, alpha=ALPHA, seed=SEED, shuffle_ranks=False)
    probs = zipf_probabilities(NUM_PAGES, ALPHA)

    exact = exact_lru_mrc(trace, SIZES)
    shards = sampled_lru_mrc(trace, SIZES, rate=0.1, seed=SEED)
    che = np.asarray([1.0 - lru_hit_rate_irm(probs, c)[0] for c in SIZES])
    fifo_che = np.asarray([1.0 - fifo_hit_rate_irm(probs, c)[0] for c in SIZES])
    fifo_sim = np.asarray(
        [repro.FIFOCache(c).run(trace).miss_rate for c in SIZES]
    )

    print(f"LRU miss-rate curve, zipf({ALPHA}) over {NUM_PAGES:,} pages, {LENGTH:,} accesses")
    print(f"{'size':>8s} {'exact':>9s} {'SHARDS@10%':>11s} {'Che':>9s}   "
          f"{'FIFO sim':>9s} {'FIFO Che':>9s}")
    for i, size in enumerate(SIZES):
        print(f"{size:>8,d} {exact[i]:>9.4f} {shards[i]:>11.4f} {che[i]:>9.4f}   "
              f"{fifo_sim[i]:>9.4f} {fifo_che[i]:>9.4f}")
    gap_che = np.abs(exact - che).max()
    gap_shards = np.abs(exact - shards).max()
    print(f"\nmax |exact − Che| = {gap_che:.4f};  max |exact − SHARDS| = {gap_shards:.4f}")
    print("(exact includes cold-start misses; Che models steady state — the small")
    print(" residual shrinks with trace length. FIFO's Che fixed point also matches.)")


if __name__ == "__main__":
    main()
