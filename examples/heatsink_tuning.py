#!/usr/bin/env python
"""Tuning HEAT-SINK LRU: the §5 design knobs on a hostile workload.

Uses the *saturated-bins* workload (uniform accesses over a working set
sized exactly to the bin region) — the purest stress for the heat-sink
mechanism: mean bin load equals the bin size ``b``, so without the sink
roughly half the bins overflow and thrash forever. Sweeps:

- the per-miss routing probability ``p`` (paper: ε²),
- the heat-sink size (paper: εn),
- the bin size ``b`` (paper: ε⁻³; footnote 3: ε⁻²·polylog works too).

Run:  python examples/heatsink_tuning.py
"""

from __future__ import annotations

import math

import repro
from repro.sim.results import ResultsTable
from repro.traces.phases import working_set_trace

N = 4096
EPS = 0.25
LENGTH = 400_000
SEED = 11


def build(bin_size: int, sink_size: int, sink_prob: float) -> repro.HeatSinkLRU:
    num_bins = max(1, math.ceil(N / bin_size))
    return repro.HeatSinkLRU(
        capacity=num_bins * bin_size + sink_size,
        bin_size=bin_size,
        sink_size=sink_size,
        sink_prob=sink_prob,
        seed=SEED,
    )


def main() -> None:
    b0 = int(math.ceil(EPS**-3))
    sink0 = max(2, math.ceil(EPS * N))
    p0 = EPS**2
    reference = build(b0, sink0, p0)
    trace = working_set_trace(
        reference.main_size, LENGTH, locality=1.0, universe=reference.main_size, seed=SEED
    )
    warm = LENGTH // 4
    print(f"workload: uniform over {reference.main_size} pages "
          f"(= bin-region capacity; mean bin load = b)")
    print(f"paper configuration: b={b0}, sink={sink0}, p={p0}\n")

    table = ResultsTable()

    def measure(label: str, knob: str, policy: repro.HeatSinkLRU) -> None:
        result = policy.run(trace)
        steady = float((~result.hits[warm:]).mean())
        table.append(
            knob=knob,
            config=label,
            bin_size=policy.bin_size,
            sink_size=policy.sink_size,
            sink_prob=policy.sink_prob,
            steady_miss_rate=steady,
            sink_occupancy=result.extra["sink_occupancy"],
        )

    measure("paper (b=eps^-3, s=eps·n, p=eps^2)", "baseline", build(b0, sink0, p0))
    for p in (0.0, EPS**3, EPS**2, EPS, 2 * EPS):
        measure(f"p={p:.4g}", "sink_prob", build(b0, sink0, min(1.0, p)))
    for s_mult, s_label in ((0.25, "eps·n/4"), (0.5, "eps·n/2"), (1.0, "eps·n"), (2.0, "2·eps·n")):
        measure(f"sink={s_label}", "sink_size", build(b0, max(2, int(sink0 * s_mult)), p0))
    for b in (4, 16, b0, 2 * b0):
        measure(f"b={b}", "bin_size", build(b, sink0, p0))

    print(table.to_markdown())
    print("\nreadings:")
    print(" - p=0 rows show the thrash the sink exists to fix;")
    print(" - tiny p drains hot bins too slowly; p in [eps^2, eps] is the sweet spot;")
    print(" - shrinking the sink below the hot-overflow volume re-melts the cache.")


if __name__ == "__main__":
    main()
