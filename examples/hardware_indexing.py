#!/usr/bin/env python
"""Hardware set-indexing pathologies: why the paper's model hashes.

Real CPU caches index sets with low address bits (modulo). On a
power-of-two strided walk — e.g. the column-major traversal of a
row-major matrix — every touched line can land in the *same* set, and a
d-way modulo-indexed cache misses 100% where a hashed cache of identical
geometry sails at the fully-associative floor. This is the hardware
motivation for the paper's (semi-)uniform hashed-position model and for
skewed associativity [Seznec '93].

Run:  python examples/hardware_indexing.py
"""

from __future__ import annotations

import repro
from repro.core.assoc.hashdist import ModuloSetHashes, SetAssociativeHashes, SkewedHashes
from repro.traces.addresses import matrix_traversal, pointer_chase, strided_walk
from repro.viz import bar_chart

N = 4096  # cache lines
D = 8     # ways
LINE = 64
SEED = 9


def policies():
    return {
        "modulo set-index (real HW)": repro.PLruCache(N, dist=ModuloSetHashes(N, D)),
        "hashed set-index": repro.PLruCache(N, dist=SetAssociativeHashes(N, D, seed=SEED)),
        "skewed (Seznec)": repro.PLruCache(N, dist=SkewedHashes(N, D, seed=SEED)),
        "fully-assoc LRU": repro.LRUCache(N),
    }


def main() -> None:
    num_sets = N // D
    workloads = {
        # stride of exactly num_sets lines: all accesses alias to one modulo set
        "aligned stride (2^k)": strided_walk(
            4 * D, stride_bytes=LINE * num_sets, repeats=200, line_bytes=LINE
        ),
        # column-major walk of a row-major matrix whose row is num_sets lines
        "matrix column walk": matrix_traversal(
            4 * D, num_sets * (LINE // 8), order="col", repeats=20, line_bytes=LINE
        ),
        # pointer chase: no spatial structure; index function is irrelevant
        "pointer chase": pointer_chase(2 * N, 200_000, node_bytes=LINE, seed=SEED),
    }
    for wname, trace in workloads.items():
        print(f"\n=== {wname}  ({len(trace):,} accesses, {trace.num_distinct:,} lines) ===")
        rates = {}
        for pname, policy in policies().items():
            rates[pname] = policy.run(trace).miss_rate
        print(bar_chart(rates, width=36))
    print(
        "\nreading: modulo indexing collapses on power-of-two strides while the"
        "\nhashed variants track full LRU — the gap the paper's hashed model"
        "\nbakes in from the start. On unstructured traffic all indexings tie."
    )


if __name__ == "__main__":
    main()
