"""Cluster smoke: router + 4 worker processes, replay, exact parity.

This is the acceptance script CI runs for the cluster tier. Three acts:

1. spawn a 4-worker cluster (one process per shard) behind a
   consistent-hash router on an ephemeral port;
2. replay a 50k-access Zipf trace through the router on one pipelined
   binary connection — the same load generator the single server uses;
3. cross-check the replayed hit count against the offline
   ring-partitioned reference (each worker's key subsequence through its
   own seeded policy) — the cluster must match the simulator *exactly*,
   hit for hit.

Run:  python examples/cluster_smoke.py [workers]
"""

from __future__ import annotations

import asyncio
import sys

import repro
from repro.cluster import cluster_reference, running_cluster
from repro.service import ServiceClient, replay_trace

POLICY = "heatsink"
CAPACITY = 2_048
SEED = 42
TRACE = repro.zipf_trace(num_pages=8 * CAPACITY, length=50_000, alpha=1.0, seed=SEED)


async def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    async with running_cluster(POLICY, CAPACITY, workers=workers, seed=SEED) as cluster:
        print(
            f"cluster: {workers} worker processes behind the router on "
            f"127.0.0.1:{cluster.port}"
        )

        # -- the protocol by hand, through the router --------------------
        async with await ServiceClient.connect("127.0.0.1", cluster.port) as client:
            print("PING   ->", await client.ping())
            print("PUT 7  ->", await client.put(7, {"user": "ada"}))
            print("GET 7  ->", await client.get(7))
            status = await client.reshard()
            print("RESHARD->", {k: status[k] for k in ("ok", "migrating", "workers")})

        # -- fresh cluster for the parity replay (the manual ops above
        # already advanced one worker's policy state) ---------------------
    async with running_cluster(POLICY, CAPACITY, workers=workers, seed=SEED) as cluster:
        report = await replay_trace(
            TRACE,
            host="127.0.0.1",
            port=cluster.port,
            mode="pipeline",
            concurrency=64,
            frame="binary",
        )
        print("\npipelined replay through the router:")
        print(report.summary())
        stats = await cluster.stats()
        print(
            f"router: {stats['router']['forwarded']} forwarded, "
            f"{stats['router']['fanouts']} fanouts, errors={stats['errors']}"
        )

    reference = cluster_reference(POLICY, CAPACITY, workers, TRACE, seed=SEED)
    print(f"\noffline reference hit rate : {reference['hit_rate']:.4f}")
    print(f"cluster replayed hit rate  : {report.hit_rate:.4f}")
    if report.hits != reference["hits"]:
        print(
            f"PARITY FAILURE: cluster {report.hits} hits != "
            f"reference {reference['hits']}"
        )
        return 1
    if report.errors:
        print(f"REPLAY ERRORS: {report.errors}")
        return 1
    print("exact parity with the ring-partitioned simulator ✓")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
