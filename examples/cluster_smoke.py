"""Cluster smoke: router + 4 worker processes, replay, exact parity.

This is the acceptance script CI runs for the cluster tier. Three acts:

1. spawn a 4-worker cluster (one process per shard) behind a
   consistent-hash router on an ephemeral port;
2. replay a 50k-access Zipf trace through the router on one pipelined
   binary connection — the same load generator the single server uses;
3. cross-check the replayed hit count against the offline
   ring-partitioned reference (each worker's key subsequence through its
   own seeded policy) — the cluster must match the simulator *exactly*,
   hit for hit.

With ``--trace-dir DIR`` the whole run is traced: every tier writes a
span NDJSON file into DIR (``spans-router.ndjson`` for the router process
— client roots included — plus one per worker), and the script stitches
them afterwards to assert every request formed a complete
client → router → worker tree. Summarize with ``repro trace DIR/*.ndjson``.

Run:  python examples/cluster_smoke.py [workers] [--trace-dir DIR]
"""

from __future__ import annotations

import asyncio
import sys

import repro
from repro.cluster import cluster_reference, running_cluster
from repro.service import ServiceClient, replay_trace

POLICY = "heatsink"
CAPACITY = 2_048
SEED = 42
TRACE = repro.zipf_trace(num_pages=8 * CAPACITY, length=50_000, alpha=1.0, seed=SEED)


def _trace_dir(argv: list[str]) -> str | None:
    if "--trace-dir" in argv:
        i = argv.index("--trace-dir")
        if i + 1 >= len(argv):
            raise SystemExit("--trace-dir needs a directory argument")
        del argv[i]
        return argv.pop(i)
    return None


def _check_spans(trace_dir: str) -> int:
    from pathlib import Path

    from repro.obs.spans import format_summary, read_spans, stitch, summarize

    paths = sorted(Path(trace_dir).glob("spans-*.ndjson"))
    spans = read_spans(paths)
    trees = stitch(spans)
    print(
        f"\nspans: {len(spans)} records in {len(paths)} files, "
        f"{len(trees['traces'])} traces"
    )
    print(format_summary(summarize(spans)))
    if trees["orphans"] or trees["multi_root"]:
        print(
            f"SPAN STITCH FAILURE: {len(trees['orphans'])} orphan spans, "
            f"{len(trees['multi_root'])} multi-root traces"
        )
        return 1
    # HELLO/PING answer at the router, so only data ops must reach a worker
    incomplete = [
        tid
        for tid, root in trees["roots"].items()
        if root["name"] == "client.request"
        and not root.get("error")
        and root.get("op") in ("GET", "PUT", "DEL", "MGET", "MPUT")
        and not {"client.request", "router.request", "server.request"}
        <= {s["name"] for s in trees["traces"][tid]}
    ]
    if incomplete:
        print(f"SPAN STITCH FAILURE: {len(incomplete)} client traces missing a tier")
        return 1
    print("every client request stitched into a complete client→router→worker tree ✓")
    return 0


async def main() -> int:
    argv = sys.argv[1:]
    trace_dir = _trace_dir(argv)
    workers = int(argv[0]) if argv else 4
    async with running_cluster(POLICY, CAPACITY, workers=workers, seed=SEED) as cluster:
        print(
            f"cluster: {workers} worker processes behind the router on "
            f"127.0.0.1:{cluster.port}"
        )

        # -- the protocol by hand, through the router --------------------
        async with await ServiceClient.connect("127.0.0.1", cluster.port) as client:
            print("PING   ->", await client.ping())
            print("PUT 7  ->", await client.put(7, {"user": "ada"}))
            print("GET 7  ->", await client.get(7))
            status = await client.reshard()
            print("RESHARD->", {k: status[k] for k in ("ok", "migrating", "workers")})

        # -- fresh cluster for the parity replay (the manual ops above
        # already advanced one worker's policy state) ---------------------
    # span files are truncated on open, so only the replay cluster traces
    async with running_cluster(
        POLICY, CAPACITY, workers=workers, seed=SEED, trace_dir=trace_dir
    ) as cluster:
        report = await replay_trace(
            TRACE,
            host="127.0.0.1",
            port=cluster.port,
            mode="pipeline",
            concurrency=64,
            frame="binary",
        )
        print("\npipelined replay through the router:")
        print(report.summary())
        stats = await cluster.stats()
        print(
            f"router: {stats['router']['forwarded']} forwarded, "
            f"{stats['router']['fanouts']} fanouts, errors={stats['errors']}"
        )

    reference = cluster_reference(POLICY, CAPACITY, workers, TRACE, seed=SEED)
    print(f"\noffline reference hit rate : {reference['hit_rate']:.4f}")
    print(f"cluster replayed hit rate  : {report.hit_rate:.4f}")
    if report.hits != reference["hits"]:
        print(
            f"PARITY FAILURE: cluster {report.hits} hits != "
            f"reference {reference['hits']}"
        )
        return 1
    if report.errors:
        print(f"REPLAY ERRORS: {report.errors}")
        return 1
    print("exact parity with the ring-partitioned simulator ✓")
    if trace_dir is not None:
        return _check_spans(trace_dir)
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
