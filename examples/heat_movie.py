#!/usr/bin/env python
"""Watch the heat dissipate: per-slot eviction pressure over time.

Renders a per-window "thermal camera" view of the cache: each row is a
time window, each character a group of slots, darkness = eviction
pressure in that window. On the Theorem-2 contention workload:

- 2-LRU's hot band *stays* hot (the melt — same slots thrash forever);
- 2-RANDOM's frame cools window by window (Lemma 7's mini-phases ending).

Run:  python examples/heat_movie.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.viz import heat_strip, sparkline


def thermal_film(policy, seq, windows: int) -> None:
    policy.run(seq.trace[: seq.t0])  # warm through the populate phase
    suffix = seq.trace.pages[seq.t0 :]
    window = max(1, suffix.size // windows)
    prev = policy.eviction_counts()
    frames: list[np.ndarray] = []
    rates: list[float] = []
    for w in range(windows):
        chunk = suffix[w * window : (w + 1) * window]
        if chunk.size == 0:
            break
        result = policy.run(chunk, reset=False)
        now = policy.eviction_counts()
        frames.append(now - prev)
        rates.append(result.miss_rate)
        prev = now
    # contention lives on a handful of slots: zoom the camera onto the 64
    # slots with the largest total pressure (sorted hottest-first)
    totals = np.sum(frames, axis=0)
    hot_slots = np.argsort(totals)[::-1][:64]
    zoomed = [frame[hot_slots].astype(np.float64) for frame in frames]
    peak = max(float(f.max()) for f in zoomed) or 1.0
    print(f"\n--- {policy.name} ---  (columns = 64 hottest slots, hottest left)")
    print(f"    miss rate per window: [{sparkline(rates, lo=0.0)}]")
    for w, frame in enumerate(zoomed):
        print(f"  w{w:02d} |{heat_strip(frame, buckets=64, hi=peak)}| "
              f"{int(frames[w].sum()):>5d} evictions, miss {rates[w]:.3f}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    seq = repro.build_theorem2_sequence(n, rounds=48, seed=7)
    print(f"Theorem-2 contention workload on n={n} slots "
          f"(H={seq.heavy.size}, A=B={seq.light_a.size}); 12 time windows.")
    print("Darkness = eviction pressure on that slot group during the window.")
    thermal_film(repro.PLruCache(n, d=2, seed=3), seq, windows=12)
    thermal_film(repro.DRandomCache(n, d=2, seed=3), seq, windows=12)
    print("\nreading: 2-LRU's bands persist (pinned contention); 2-RANDOM's")
    print("frame fades to blank — the heat-dissipation effect Theorem 3 builds on.")


if __name__ == "__main__":
    main()
