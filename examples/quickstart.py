#!/usr/bin/env python
"""Quickstart: compare cache-eviction policies on a Zipf workload.

Demonstrates the three core public APIs in ~30 lines:

1. generate a workload       (``repro.zipf_trace``)
2. build policies            (``repro.make_policy`` / policy classes)
3. run and compare           (``repro.sim.compare_policies``)

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.sim import compare_policies

N_PAGES = 16_384  # distinct pages in the workload
LENGTH = 300_000  # number of accesses
CAPACITY = 2_048  # cache slots
SEED = 42


def main() -> None:
    trace = repro.zipf_trace(N_PAGES, LENGTH, alpha=1.0, seed=SEED)
    print(f"workload: {trace}")

    policies = {
        # fully-associative references
        "LRU (full)": repro.LRUCache(CAPACITY),
        "OPT (offline)": repro.BeladyCache(CAPACITY),
        # the paper's low-associativity policies
        "2-LRU": repro.PLruCache(CAPACITY, d=2, seed=SEED),
        "2-RANDOM": repro.DRandomCache(CAPACITY, d=2, seed=SEED),
        "HEAT-SINK LRU": repro.HeatSinkLRU.from_epsilon(CAPACITY, 0.25, seed=SEED),
        # hardware baselines
        "8-way set-assoc": repro.SetAssociativeLRU(CAPACITY, d=8, seed=SEED),
        "2-way skewed": repro.SkewedAssociativeLRU(CAPACITY, d=2, seed=SEED),
    }
    table = compare_policies(policies, trace)
    print()
    print(table.to_markdown(columns=["label", "capacity", "miss_rate", "steady_miss_rate", "seconds"]))
    print()
    print("note: HEAT-SINK runs at (1+eps) * capacity by construction —")
    print("      that extra space is exactly Theorem 4's resource augmentation.")


if __name__ == "__main__":
    main()
