#!/usr/bin/env python
"""Watch d-LRU melt: the Theorem-2 lower bound, live.

Builds the §3 adversarial access sequence (populate the cache, then cycle
``H, A, H, B``) and traces per-round miss counts for 2-LRU, 2-RANDOM, and
offline OPT with β = 2 resource augmentation. The Theorem-2 signature:

- 2-LRU's per-round misses plateau at a persistent positive level —
  total misses grow linearly in the number of rounds *forever*;
- 2-RANDOM's decay toward zero (Theorem 3's heat dissipation);
- OPT pays only the one-time cold misses for A and B.

Run:  python examples/adversarial_lowerbound.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.traces.adversarial import find_happy_pairs


def ascii_series(values: np.ndarray, width: int = 40) -> str:
    """Tiny ASCII sparkline for a miss-count series."""
    peak = float(values.max()) or 1.0
    blocks = " .:-=+*#%@"
    return "".join(blocks[min(9, int(9 * v / peak))] for v in values[:width])


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    rounds = 60
    seq = repro.build_theorem2_sequence(n, rounds=rounds, seed=7)
    print(f"cache size n={n}")
    print(
        f"adversarial sequence: populate {seq.t0} pages, then {rounds} rounds of "
        f"H({seq.heavy.size}), A({seq.light_a.size}), H, B({seq.light_b.size})"
    )
    print(f"post-populate working set: {seq.post_populate_working_set} pages "
          f"({seq.post_populate_working_set / n:.2f}·n — OPT at n/2 holds it all)\n")

    policies = {
        "2-LRU": repro.PLruCache(n, d=2, seed=3),
        "2-RANDOM": repro.DRandomCache(n, d=2, seed=3),
    }
    per_round_len = (len(seq.trace) - seq.t0) // rounds
    print(f"{'policy':10s} {'rounds 1-5':>11s} {'last 10':>9s}  per-round misses over time")
    for label, policy in policies.items():
        result = policy.run(seq.trace)
        misses = (~result.hits[seq.t0 :]).astype(np.int64)
        per_round = misses[: per_round_len * rounds].reshape(rounds, per_round_len).sum(axis=1)
        print(
            f"{label:10s} {per_round[:5].mean():11.1f} {per_round[-10:].mean():9.1f}"
            f"  [{ascii_series(per_round[1:])}]  (rounds 2+, scaled to own peak)"
        )

    opt = repro.BeladyCache(n // 2)
    opt_misses_after = int((~opt.run(seq.trace).hits[seq.t0 :]).sum())
    print(f"{'OPT(n/2)':10s} {'—':>11s} {'—':>9s}  total after populate: "
          f"{opt_misses_after} (= cold misses on A∪B: {2 * seq.light_a.size})")

    pairs = find_happy_pairs(seq, repro.PLruCache(n, d=2, seed=3))
    print(f"\nliteral happy pairs found (paper's witnesses): {len(pairs)}")
    print("(rare at laptop n — the persistent 2-LRU misses come from the same")
    print(" contention mechanism acting through larger light-page clusters)")


if __name__ == "__main__":
    main()
