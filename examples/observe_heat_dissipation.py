#!/usr/bin/env python
"""Watch heat dissipate: trace a HEAT-SINK run and measure placement lifetimes.

The paper's §1.1 Part 3 mechanism in one picture: pages routed to the
heat-sink are *supposed* to be short-lived — the sink is a small, hot
region whose churn drains heat out of overloaded bins, while pages that
win a bin slot stick around. This script captures a run's structured
events (``access`` / ``route`` / ``evict``) through :mod:`repro.obs`,
pairs admissions with evictions, and prints the lifetime distributions
split by region, plus the sink-occupancy time series as a sparkline.

Run:  python examples/observe_heat_dissipation.py
"""

from __future__ import annotations

import repro
from repro.obs import hooks
from repro.obs.lifetimes import occupancy_series, placement_lifetimes
from repro.obs.sinks import ListSink
from repro.viz import sparkline

N_PAGES = 2_048
LENGTH = 100_000
CAPACITY = 544  # 32 bins of 16 + 32-slot sink
SINK_SIZE = 32
SEED = 1


def main() -> None:
    trace = repro.zipf_trace(N_PAGES, LENGTH, alpha=1.0, seed=3)
    policy = repro.HeatSinkLRU(
        CAPACITY, bin_size=16, sink_size=SINK_SIZE, sink_prob=0.2, seed=SEED
    )

    with hooks.capturing(ListSink()) as sink:
        result = policy.run(trace)

    print(f"policy    : {policy.name}")
    print(f"trace     : {trace}")
    print(f"miss rate : {result.miss_rate:.4f}")
    print(f"events    : {len(sink.events)} captured\n")

    print("placement lifetimes (accesses from admission to eviction):")
    by_region = placement_lifetimes(sink.events)
    for region, stats in sorted(by_region.items()):
        horizon = stats.survival([100, 1000])
        print(
            f"  {region:<5} n={stats.count:<6} mean={stats.mean:8.1f}  "
            f"median={stats.median:7.1f}  "
            f"P[>100]={horizon[100]:.2f}  P[>1000]={horizon[1000]:.2f}  "
            f"(+{stats.censored} still resident)"
        )

    bin_stats, sink_stats = by_region["bin"], by_region["sink"]
    ratio = bin_stats.mean / sink_stats.mean
    print(
        f"\nheat dissipation: sink placements live {ratio:.1f}x shorter than "
        f"bin placements —\nbad placements are recycled fast, exactly the "
        f"negative feedback Lemmas 5-8 need."
    )

    # downsample to ~64 sparkline characters regardless of run length
    n_changes = sum(
        e["ev"] == "route" and e["to"] == "sink" or
        e["ev"] == "evict" and e.get("from") == "sink"
        for e in sink.events
    )
    times, counts = occupancy_series(
        sink.events, region="sink", every=max(1, n_changes // 64)
    )
    occupancy = counts.astype(float) / SINK_SIZE
    print(f"\nsink occupancy over time (0 → {SINK_SIZE} slots):")
    print(f"  [{sparkline(occupancy, lo=0.0, hi=1.0)}]")
    print(
        f"  fills once, then holds quasi-steady at "
        f"{occupancy[len(occupancy) // 2 :].mean():.0%} while placements churn."
    )


if __name__ == "__main__":
    main()
