#!/usr/bin/env python
"""Policy × workload matrix: where does each design win?

Runs every registered policy family over a suite of workload shapes
(Zipf, cyclic scan, sawtooth, loops, working-set, phase-change,
stack-distance model) and prints a steady-state miss-rate matrix plus a
per-workload winner. This is the map the paper's intro gestures at:
eviction-rule quality is workload- and topology-dependent.

Run:  python examples/workload_zoo.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.metrics import steady_state_miss_rate
from repro.traces.stackdist import stack_distance_trace

CAPACITY = 1_024
LENGTH = 150_000
SEED = 5


def workloads() -> dict[str, repro.Trace]:
    c = CAPACITY
    return {
        "zipf(0.8)": repro.zipf_trace(8 * c, LENGTH, alpha=0.8, seed=SEED),
        "zipf(1.2)": repro.zipf_trace(8 * c, LENGTH, alpha=1.2, seed=SEED),
        "cyclic-scan": repro.cyclic_scan_trace(int(1.25 * c), LENGTH),
        "sawtooth": repro.sawtooth_trace(int(1.25 * c), repeats=LENGTH // int(2.5 * c) + 1)[:LENGTH],
        "loops": repro.loop_mixture_trace([c // 2, c, 2 * c], LENGTH, seed=SEED),
        "working-set": repro.working_set_trace(int(0.8 * c), LENGTH, locality=0.95, seed=SEED),
        "phases": repro.phase_change_trace(int(0.7 * c), LENGTH // 8, 8, overlap=0.25, zipf_alpha=0.9, seed=SEED),
        "stack-model": stack_distance_trace(
            LENGTH, np.concatenate([np.full(c // 2, 4.0), np.full(c, 1.0)]), new_page_weight=40.0, seed=SEED
        ),
    }


def policies() -> dict[str, callable]:
    c = CAPACITY
    return {
        "OPT": lambda: repro.BeladyCache(c),
        "LRU": lambda: repro.LRUCache(c),
        "FIFO": lambda: repro.FIFOCache(c),
        "CLOCK": lambda: repro.ClockCache(c),
        "MARKING": lambda: repro.MarkingCache(c, seed=SEED),
        "ARC": lambda: repro.ARCCache(c),
        "LIRS": lambda: repro.LIRSCache(c),
        "SIEVE": lambda: repro.SieveCache(c),
        "TinyLFU": lambda: repro.TinyLFUCache(c, seed=SEED),
        "2-LRU": lambda: repro.PLruCache(c, d=2, seed=SEED),
        "2-RANDOM": lambda: repro.DRandomCache(c, d=2, seed=SEED),
        "8-set-assoc": lambda: repro.SetAssociativeLRU(c, d=8, seed=SEED),
        "HEAT-SINK": lambda: repro.HeatSinkLRU.from_epsilon(c, 0.25, seed=SEED),
    }


def main() -> None:
    wl = workloads()
    pol = policies()
    names = list(pol)
    col_w = max(len(n) for n in names) + 1

    matrix: dict[str, dict[str, float]] = {}
    for wname, trace in wl.items():
        matrix[wname] = {}
        for pname, factory in pol.items():
            result = factory().run(trace)
            matrix[wname][pname] = steady_state_miss_rate(result)

    header = f"{'workload':14s}" + "".join(f"{n:>{col_w}s}" for n in names)
    print(header)
    print("-" * len(header))
    for wname, row in matrix.items():
        online = {k: v for k, v in row.items() if k != "OPT"}
        best = min(online, key=online.get)
        cells = "".join(
            f"{row[n] * 100:>{col_w - 1}.1f}" + ("*" if n == best else " ") for n in names
        )
        print(f"{wname:14s}{cells}")
    print("\n(steady-state miss rate %, lower is better; * = best online policy;")
    print(" HEAT-SINK uses (1+eps)·capacity — Theorem 4's augmented budget)")


if __name__ == "__main__":
    main()
