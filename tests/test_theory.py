"""Tests for repro.theory — closed-form predictions vs simulation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.fully.fifo import FIFOCache
from repro.core.fully.lru import LRUCache
from repro.core.fully.random_evict import RandomEvictCache
from repro.errors import ConfigurationError
from repro.theory import (
    borel_pmf,
    che_characteristic_time,
    edge_component_tail,
    expected_hot_bins,
    expected_overflow_pages,
    fifo_hit_rate_irm,
    lru_hit_rate_irm,
    mean_two_pow_component,
    poisson_tail,
    zipf_probabilities,
)
from repro.traces.synthetic import zipf_trace


class TestZipfProbabilities:
    def test_normalized_and_monotone(self):
        p = zipf_probabilities(100, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)

    def test_alpha_zero_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_probabilities(10, -1.0)


class TestCheCharacteristicTime:
    def test_occupancy_identity(self):
        p = zipf_probabilities(500, 0.8)
        t = che_characteristic_time(p, 100)
        occ = (1 - np.exp(-p * t)).sum()
        assert occ == pytest.approx(100, rel=1e-6)

    def test_monotone_in_capacity(self):
        p = zipf_probabilities(500, 0.8)
        assert che_characteristic_time(p, 50) < che_characteristic_time(p, 200)

    def test_validation(self):
        p = zipf_probabilities(10, 1.0)
        with pytest.raises(ConfigurationError):
            che_characteristic_time(p, 0)
        with pytest.raises(ConfigurationError):
            che_characteristic_time(p, 10)  # everything fits: no root
        with pytest.raises(ConfigurationError):
            che_characteristic_time(np.array([0.5, 0.6]), 1)  # not normalized


class TestCheVsSimulation:
    """The headline property: Che matches IRM simulation to ~1%."""

    @pytest.mark.parametrize("alpha,capacity", [(0.8, 256), (1.1, 256), (0.9, 1024)])
    def test_lru_accuracy(self, alpha, capacity):
        num_pages = 4096
        probs = zipf_probabilities(num_pages, alpha)
        predicted, _ = lru_hit_rate_irm(probs, capacity)
        trace = zipf_trace(num_pages, 300_000, alpha=alpha, seed=7, shuffle_ranks=False)
        simulated = float(LRUCache(capacity).run(trace).hits[60_000:].mean())
        assert abs(predicted - simulated) < 0.015

    def test_fifo_and_random_share_fixed_point(self):
        num_pages, capacity, alpha = 4096, 512, 0.9
        probs = zipf_probabilities(num_pages, alpha)
        predicted, _ = fifo_hit_rate_irm(probs, capacity)
        trace = zipf_trace(num_pages, 300_000, alpha=alpha, seed=8, shuffle_ranks=False)
        sim_fifo = float(FIFOCache(capacity).run(trace).hits[60_000:].mean())
        sim_rand = float(RandomEvictCache(capacity, seed=1).run(trace).hits[60_000:].mean())
        assert abs(predicted - sim_fifo) < 0.02
        assert abs(predicted - sim_rand) < 0.02

    def test_lru_beats_fifo_under_irm(self):
        probs = zipf_probabilities(2048, 1.0)
        lru_rate, _ = lru_hit_rate_irm(probs, 256)
        fifo_rate, _ = fifo_hit_rate_irm(probs, 256)
        assert lru_rate > fifo_rate

    def test_per_page_hits_monotone_in_popularity(self):
        probs = zipf_probabilities(1000, 1.0)
        _, per_page = lru_hit_rate_irm(probs, 100)
        assert np.all(np.diff(per_page) <= 1e-12)


class TestPoissonTail:
    def test_against_scipy(self):
        from scipy import stats

        for mu in (0.1, 1.0, 7.3, 40.0):
            for k in (0, 1, 5, 50):
                assert poisson_tail(mu, k) == pytest.approx(
                    stats.poisson.sf(k, mu), abs=1e-10
                )

    def test_edge_cases(self):
        assert poisson_tail(1.0, -1) == 1.0
        assert poisson_tail(0.0, 0) == 0.0
        with pytest.raises(ConfigurationError):
            poisson_tail(-1.0, 2)


class TestBallsBins:
    def test_hot_bins_matches_monte_carlo(self, rng):
        num_balls, num_bins, bin_size = 3000, 100, 38
        predicted = expected_hot_bins(num_balls, num_bins, bin_size)
        trials = 300
        count = 0
        for _ in range(trials):
            loads = np.bincount(
                rng.integers(0, num_bins, size=num_balls), minlength=num_bins
            )
            count += int((loads > bin_size).sum())
        measured = count / trials
        assert predicted == pytest.approx(measured, rel=0.25, abs=0.5)

    def test_overflow_matches_monte_carlo(self, rng):
        num_balls, num_bins, bin_size = 3000, 100, 34
        predicted = expected_overflow_pages(num_balls, num_bins, bin_size)
        trials = 300
        total = 0
        for _ in range(trials):
            loads = np.bincount(
                rng.integers(0, num_bins, size=num_balls), minlength=num_bins
            )
            total += int(np.maximum(loads - bin_size, 0).sum())
        measured = total / trials
        assert predicted == pytest.approx(measured, rel=0.2, abs=1.0)

    def test_zero_cases(self):
        assert expected_overflow_pages(0, 10, 4) == 0.0
        assert expected_hot_bins(0, 10, 4) == 0.0


class TestBorel:
    def test_pmf_sums_to_one_subcritical(self):
        pmf = borel_pmf(0.3, 2000)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_mu_zero_degenerate(self):
        pmf = borel_pmf(0.0, 5)
        assert pmf.tolist() == [1.0, 0.0, 0.0, 0.0, 0.0]

    def test_mean_formula(self):
        """E[Borel(mu)] = 1 / (1 - mu)."""
        mu = 0.25
        pmf = borel_pmf(mu, 4000)
        mean = float((pmf * np.arange(1, 4001)).sum())
        assert mean == pytest.approx(1.0 / (1.0 - mu), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            borel_pmf(1.0, 10)
        with pytest.raises(ConfigurationError):
            borel_pmf(0.5, 0)


class TestEdgeComponentPrediction:
    def test_matches_lemma6_measurements(self):
        """The Borel convolution must track the simulated per-edge tail."""
        from repro.graphtools.components import component_of_edge, component_size_tail
        from repro.graphtools.random_graph import sample_random_multigraph
        from repro.rng import spawn_seeds

        n = 8192
        m = int(n / (4 * math.e**2))
        pooled = []
        for s in spawn_seeds(31, 25):
            edges = sample_random_multigraph(n, m, seed=s)
            pooled.append(component_of_edge(n, edges))
        measured = component_size_tail(np.concatenate(pooled), 6)
        predicted = edge_component_tail(2 * m / n, 6)
        # sizes 3 and 4 carry enough samples for a tight check
        assert predicted[2] == pytest.approx(measured[2], rel=0.2)
        assert predicted[3] == pytest.approx(measured[3], rel=0.5, abs=0.01)

    def test_tail_decreasing_and_proper(self):
        tail = edge_component_tail(0.1, 10)
        assert tail[0] == pytest.approx(1.0)
        assert tail[1] == pytest.approx(1.0)  # an edge has >= 2 vertices
        assert np.all(np.diff(tail) <= 1e-12)

    def test_mean_two_pow_component_value(self):
        """At the lemma load the analytic E[2^|C|] is ~4.68 (finite)."""
        mu = 1.0 / (2.0 * math.e**2)
        assert mean_two_pow_component(mu) == pytest.approx(4.68, abs=0.1)

    def test_divergence_detected(self):
        with pytest.raises(ConfigurationError):
            mean_two_pow_component(0.49)
