"""Offline span analysis: reading, stitching, and the tail summary."""

from __future__ import annotations

import json

import pytest

from repro.obs.spans import format_summary, read_spans, stitch, summarize


def span(name, trace, span_id, parent=None, us=100.0, **attrs):
    record = {"ev": "span", "name": name, "svc": "t", "trace": trace,
              "span": span_id, "ts": 1, "us": us, **attrs}
    if parent is not None:
        record["parent"] = parent
    return record


def complete_trace(trace_id, root_us=1000.0):
    """client -> router -> worker tree, the shape the cluster emits."""
    return [
        span("client.request", trace_id, "c1", us=root_us, op="GET"),
        span("router.request", trace_id, "r1", parent="c1", us=root_us * 0.8),
        span("router.link", trace_id, "l1", parent="r1", us=root_us * 0.5),
        span("server.request", trace_id, "s1", parent="l1", us=root_us * 0.2),
    ]


class TestReadSpans:
    def test_skips_non_span_events_and_blank_lines(self, tmp_path):
        path = tmp_path / "mixed.ndjson"
        lines = [
            json.dumps({"ev": "access", "page": 1, "hit": True}),
            "",
            json.dumps(span("client.request", "t1", "a1")),
        ]
        path.write_text("\n".join(lines) + "\n")
        spans = read_spans([path])
        assert len(spans) == 1 and spans[0]["name"] == "client.request"

    def test_multiple_files_concatenate(self, tmp_path):
        for i in range(2):
            (tmp_path / f"f{i}.ndjson").write_text(
                json.dumps(span("x", f"t{i}", "s1")) + "\n"
            )
        assert len(read_spans(sorted(tmp_path.glob("*.ndjson")))) == 2

    def test_garbage_line_raises(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text("{not json\n")
        with pytest.raises(json.JSONDecodeError):
            read_spans([path])


class TestStitch:
    def test_complete_tree_is_clean(self):
        trees = stitch(complete_trace("t1") + complete_trace("t2"))
        assert sorted(trees["traces"]) == ["t1", "t2"]
        assert trees["roots"]["t1"]["name"] == "client.request"
        assert trees["orphans"] == []
        assert trees["multi_root"] == []

    def test_dangling_parent_is_an_orphan(self):
        spans = complete_trace("t1") + [span("server.request", "t1", "s9", parent="gone")]
        trees = stitch(spans)
        assert [o["span"] for o in trees["orphans"]] == ["s9"]

    def test_two_roots_flagged(self):
        spans = [span("a", "t1", "s1"), span("b", "t1", "s2")]
        assert stitch(spans)["multi_root"] == ["t1"]

    def test_cross_file_stitching_by_trace_id(self):
        # same trace id arriving from different "files" (list order) stitches
        tree = complete_trace("t1")
        trees = stitch(tree[2:] + tree[:2])
        assert trees["orphans"] == []


class TestSummarize:
    def test_names_table_and_counts(self):
        summary = summarize(complete_trace("t1") + complete_trace("t2", root_us=2000.0))
        assert summary["traces"] == 2
        assert summary["orphans"] == 0
        assert summary["names"]["client.request"]["count"] == 2
        assert summary["names"]["client.request"]["max_us"] == 2000.0

    def test_breakdown_attributes_children_one_level(self):
        summary = summarize(complete_trace("t1"), tail_quantile=0.5)
        row = summary["breakdown"]["GET"]
        assert row["traces"] == 1
        # only the direct child of the root is attributed
        assert set(row["children_us"]) == {"router.request"}
        assert row["children_us"]["router.request"] == pytest.approx(800.0)
        assert row["other_us"] == pytest.approx(200.0)

    def test_format_summary_renders(self):
        text = format_summary(summarize(complete_trace("t1")))
        assert "client.request" in text
        assert "orphans 0" in text
        assert "GET" in text
