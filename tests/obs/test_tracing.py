"""The request-tracing runtime: ids, context, sampling, zero-cost contract."""

from __future__ import annotations

import pytest

from repro.obs import tracing
from repro.obs.sinks import ListSink


def record_names(sink: ListSink) -> list[str]:
    return [event["name"] for event in sink.events]


class TestDisabled:
    def test_everything_is_none_when_off(self):
        assert tracing.ENABLED is False
        assert tracing.start_trace("client.request") is None
        assert tracing.start_span("store.op") is None
        assert tracing.start_remote("aa:bb", "server.request") is None
        assert tracing.current_context() is None

    def test_span_context_manager_is_noop_when_off(self):
        with tracing.span("store.op") as sp:
            assert sp is None


class TestSpans:
    def test_root_record_shape(self):
        with tracing.recording(ListSink(), service="api", seed=1) as sink:
            root = tracing.start_trace("client.request", op="GET")
            root.end()
        (event,) = sink.events
        assert event["ev"] == "span"
        assert event["name"] == "client.request"
        assert event["svc"] == "api"
        assert event["op"] == "GET"
        assert len(event["trace"]) == 16 and len(event["span"]) == 16
        assert "parent" not in event  # roots carry no parent key
        assert event["us"] >= 0 and event["ts"] > 0

    def test_ambient_nesting_parents_and_restores(self):
        with tracing.recording(ListSink(), seed=1) as sink:
            root = tracing.start_trace("client.request")
            assert tracing.current_context() == root.ctx
            child = tracing.start_span("store.op")
            assert child.trace == root.trace
            assert child.parent == root.span
            assert tracing.current_context() == child.ctx
            child.end()
            assert tracing.current_context() == root.ctx
            root.end()
            assert tracing.current_context() is None
        assert record_names(sink) == ["store.op", "client.request"]

    def test_activate_false_never_touches_ambient(self):
        with tracing.recording(ListSink(), seed=1):
            root = tracing.start_trace("client.request", activate=False)
            assert root is not None
            assert tracing.current_context() is None
            root.end()

    def test_start_child_is_explicit_parenting(self):
        with tracing.recording(ListSink(), seed=1):
            root = tracing.start_trace("router.request", activate=False)
            link = root.start_child("router.link", node="w1")
            assert link.trace == root.trace
            assert link.parent == root.span
            assert tracing.current_context() is None
            link.end()
            root.end()

    def test_backdated_child_emits_finished_record(self):
        with tracing.recording(ListSink(), seed=1) as sink:
            t0 = tracing.clock()
            root = tracing.start_trace("server.request")
            root.child("server.parse", start_ns=t0)
            root.end()
        parse, request = sink.events
        assert parse["name"] == "server.parse"
        assert parse["parent"] == request["span"]
        assert parse["us"] >= 0
        assert parse["ts"] <= request["ts"]

    def test_end_attrs_merge_into_record(self):
        with tracing.recording(ListSink(), seed=1) as sink:
            root = tracing.start_trace("router.request", op="GET")
            root.end(aborted=True)
        (event,) = sink.events
        assert event["op"] == "GET" and event["aborted"] is True


class TestRemote:
    def test_joins_wire_context(self):
        with tracing.recording(ListSink(), service="w0", seed=1):
            sp = tracing.start_remote("aaaa:bbbb", "server.request")
            assert sp.trace == "aaaa"
            assert sp.parent == "bbbb"
            sp.end()

    def test_none_and_garbage_contexts_stay_silent(self):
        with tracing.recording(ListSink(), seed=1):
            assert tracing.start_remote(None, "server.request") is None
            assert tracing.start_remote("no-separator", "server.request") is None
            assert tracing.start_remote(":half", "server.request") is None

    @pytest.mark.parametrize(
        "ctx", [None, 42, "", "nocolon", ":x", "x:", "a" * 300]
    )
    def test_parse_context_never_raises(self, ctx):
        assert tracing.parse_context(ctx) is None

    def test_parse_context_round_trip(self):
        assert tracing.parse_context("abc:def") == ("abc", "def")


class TestDeterminism:
    def capture_ids(self, seed: int, service: str = "svc") -> list[str]:
        with tracing.recording(ListSink(), service=service, seed=seed) as sink:
            for _ in range(5):
                tracing.start_trace("client.request").end()
        return [e["trace"] + e["span"] for e in sink.events]

    def test_same_seed_same_ids(self):
        assert self.capture_ids(7) == self.capture_ids(7)

    def test_different_seed_or_service_different_ids(self):
        assert self.capture_ids(7) != self.capture_ids(8)
        assert self.capture_ids(7, "a") != self.capture_ids(7, "b")


class TestSampling:
    def test_sample_zero_roots_nothing(self):
        with tracing.recording(ListSink(), seed=1, sample=0.0) as sink:
            for _ in range(20):
                assert tracing.start_trace("client.request") is None
        assert sink.events == []

    def test_sample_decision_is_seeded(self):
        def pattern(seed):
            with tracing.recording(ListSink(), seed=seed, sample=0.5):
                return [tracing.start_trace("r", activate=False) is not None
                        for _ in range(64)]

        kept = pattern(3)
        assert kept == pattern(3)
        assert 0 < sum(kept) < 64  # actually samples, not all-or-nothing

    def test_unsampled_root_leaves_no_context(self):
        with tracing.recording(ListSink(), seed=1, sample=0.0):
            assert tracing.start_trace("client.request") is None
            # downstream guards see no ambient context -> whole trace silent
            assert tracing.start_span("store.op") is None


class TestSwitchboard:
    def test_configure_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            tracing.configure()
        with pytest.raises(ValueError, match="exactly one"):
            tracing.configure(ListSink(), path=str(tmp_path / "x.ndjson"))

    def test_configure_rejects_bad_sample(self):
        with pytest.raises(ValueError, match="sample"):
            tracing.configure(ListSink(), sample=1.5)
        assert tracing.ENABLED is False

    def test_path_sink_owned_and_closed_by_shutdown(self, tmp_path):
        path = tmp_path / "spans.ndjson"
        tracing.configure(path=str(path), service="api", seed=1)
        assert tracing.ENABLED is True
        tracing.start_trace("client.request").end()
        tracing.shutdown()
        assert tracing.ENABLED is False
        from repro.obs.spans import read_spans

        (event,) = read_spans([path])
        assert event["name"] == "client.request"

    def test_install_uninstall_flag(self):
        sink = ListSink()
        tracing.install(sink)
        assert tracing.ENABLED is True
        tracing.uninstall(sink)
        assert tracing.ENABLED is False
        tracing.uninstall(sink)  # missing is fine
