"""Prometheus text format: render → parse round-trips exactly."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.obs.exposition import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("ops_total", "operations", labels={"op": "get"}).inc(7)
    reg.counter("ops_total", labels={"op": "put"}).inc(3)
    reg.gauge("occupancy_ratio", "sink occupancy").set(0.75)
    hist = reg.histogram("latency_seconds", "latency", base=1.0, num_buckets=3)
    hist.observe(0.5)
    hist.observe(3.0)
    hist.observe(50.0)
    return reg


class TestRoundTrip:
    def test_values_survive(self):
        parsed = parse_prometheus(_registry().render())
        assert parsed.value("ops_total", op="get") == 7.0
        assert parsed.value("ops_total", op="put") == 3.0
        assert parsed.value("occupancy_ratio") == 0.75
        assert parsed.value("latency_seconds_count") == 3.0
        assert parsed.value("latency_seconds_sum") == pytest.approx(53.5)
        assert parsed.value("latency_seconds_bucket", le="1.0") == 1.0
        assert parsed.value("latency_seconds_bucket", le="4.0") == 2.0
        assert parsed.value("latency_seconds_bucket", le="+Inf") == 3.0

    def test_types_and_helps_survive(self):
        parsed = parse_prometheus(_registry().render())
        assert parsed.types["ops_total"] == "counter"
        assert parsed.types["latency_seconds"] == "histogram"
        assert parsed.helps["occupancy_ratio"] == "sink occupancy"

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'quo"te\\slash\nnewline'
        reg.gauge("g", labels={"k": nasty}).set(1)
        parsed = parse_prometheus(reg.render())
        assert parsed.value("g", k=nasty) == 1.0

    def test_integer_rendering(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(12345)
        assert "n_total 12345\n" in reg.render()

    def test_empty_registry_renders_empty(self):
        assert render_prometheus([]) == ""
        assert parse_prometheus("").samples == {}


class TestParserRobustness:
    def test_skips_blank_and_comment_lines(self):
        parsed = parse_prometheus("\n# just a remark\nx 1\n")
        assert parsed.value("x") == 1.0

    def test_malformed_sample_rejected(self):
        with pytest.raises(ProtocolError):
            parse_prometheus("lonely_name\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ProtocolError):
            parse_prometheus("x notanumber\n")

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(ProtocolError):
            parse_prometheus('x{a="b" 1\n')

    def test_special_values(self):
        parsed = parse_prometheus("a +Inf\nb -Inf\n")
        assert parsed.value("a") == float("inf")
        assert parsed.value("b") == float("-inf")
