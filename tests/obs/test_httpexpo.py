"""The tiny HTTP exposition endpoint."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServiceError
from repro.obs.exposition import parse_prometheus
from repro.obs.httpexpo import MetricsExporter, running_exporter, scrape
from repro.obs.metrics import MetricsRegistry


def run(coro):
    return asyncio.run(coro)


async def _render() -> str:
    reg = MetricsRegistry()
    reg.counter("demo_total", "demo").inc(42)
    return reg.render()


async def _raw_request(host: str, port: int, request: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(request)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    return raw


class TestExporter:
    def test_scrape_round_trip(self):
        async def scenario():
            async with running_exporter(_render) as exporter:
                assert exporter.is_serving
                body = await scrape("127.0.0.1", exporter.port)
            return body

        parsed = parse_prometheus(run(scenario()))
        assert parsed.value("demo_total") == 42.0
        assert parsed.types["demo_total"] == "counter"

    def test_content_type_and_status_line(self):
        async def scenario():
            async with running_exporter(_render) as exporter:
                return await _raw_request(
                    "127.0.0.1", exporter.port, b"GET /metrics HTTP/1.0\r\n\r\n"
                )

        raw = run(scenario())
        head = raw.split(b"\r\n\r\n", 1)[0].decode()
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain; version=0.0.4" in head

    def test_root_path_also_serves(self):
        async def scenario():
            async with running_exporter(_render) as exporter:
                return await _raw_request(
                    "127.0.0.1", exporter.port, b"GET / HTTP/1.0\r\n\r\n"
                )

        assert b"demo_total 42" in run(scenario())

    def test_healthz_answers_200_with_uptime(self):
        async def scenario():
            async with running_exporter(_render) as exporter:
                return await _raw_request(
                    "127.0.0.1", exporter.port, b"GET /healthz HTTP/1.0\r\n\r\n"
                )

        raw = run(scenario())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        assert body.startswith(b"ok uptime_s=")
        assert float(body.split(b"=", 1)[1]) >= 0.0

    def test_healthz_never_invokes_render(self):
        async def broken_render() -> str:
            raise RuntimeError("liveness must not depend on the registry")

        async def scenario():
            async with running_exporter(broken_render) as exporter:
                return await _raw_request(
                    "127.0.0.1", exporter.port, b"GET /healthz?probe=1 HTTP/1.0\r\n\r\n"
                )

        assert run(scenario()).startswith(b"HTTP/1.0 200 OK")

    def test_unknown_path_404(self):
        async def scenario():
            async with running_exporter(_render) as exporter:
                return await _raw_request(
                    "127.0.0.1", exporter.port, b"GET /nope HTTP/1.0\r\n\r\n"
                )

        assert run(scenario()).startswith(b"HTTP/1.0 404")

    def test_non_get_405(self):
        async def scenario():
            async with running_exporter(_render) as exporter:
                return await _raw_request(
                    "127.0.0.1", exporter.port, b"POST /metrics HTTP/1.0\r\n\r\n"
                )

        assert run(scenario()).startswith(b"HTTP/1.0 405")

    def test_scrape_raises_on_non_200(self):
        async def scenario():
            async def deny(reader, writer):
                await reader.readline()
                writer.write(b"HTTP/1.0 500 Nope\r\n\r\nno\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(deny, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(ServiceError):
                    await scrape("127.0.0.1", port, timeout=2.0)
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            exporter = MetricsExporter(_render)
            await exporter.start()
            try:
                with pytest.raises(ServiceError):
                    await exporter.start()
            finally:
                await exporter.stop()

        run(scenario())
