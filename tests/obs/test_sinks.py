"""Concrete sinks: list, ring buffer, NDJSON file, seeded sampling."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.sinks import ListSink, NDJSONSink, NullSink, RingBufferSink, SamplingSink


def _events(n):
    return [{"ev": "access", "i": i, "page": i % 7, "hit": bool(i % 2)} for i in range(n)]


class TestRingBufferSink:
    def test_keeps_only_most_recent(self):
        ring = RingBufferSink(3)
        for e in _events(10):
            ring.emit(e)
        assert len(ring) == 3
        assert [e["i"] for e in ring.events] == [7, 8, 9]

    def test_drain_empties_oldest_first(self):
        ring = RingBufferSink(8)
        for e in _events(5):
            ring.emit(e)
        drained = ring.drain()
        assert [e["i"] for e in drained] == [0, 1, 2, 3, 4]
        assert len(ring) == 0

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(0)


class TestNDJSONSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.ndjson"
        with NDJSONSink(path) as sink:
            for e in _events(4):
                sink.emit(e)
        assert sink.written == 4
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[2]) == {"ev": "access", "i": 2, "page": 2, "hit": False}

    def test_caller_owned_file_left_open(self):
        buf = io.StringIO()
        sink = NDJSONSink(buf)
        sink.emit({"ev": "x", "i": 0})
        sink.close()
        assert not buf.closed  # caller owns it
        assert buf.getvalue() == '{"ev":"x","i":0}\n'


class TestSamplingSink:
    def test_rate_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            SamplingSink(NullSink(), rate=1.5)
        with pytest.raises(ConfigurationError):
            SamplingSink(NullSink(), rate=-0.1)

    def test_rate_zero_and_one(self):
        keep_all = SamplingSink(inner := ListSink(), rate=1.0, seed=3)
        for e in _events(50):
            keep_all.emit(e)
        assert keep_all.kept == len(inner) == 50

        keep_none = SamplingSink(inner2 := ListSink(), rate=0.0, seed=3)
        for e in _events(50):
            keep_none.emit(e)
        assert keep_none.seen == 50
        assert keep_none.kept == len(inner2) == 0

    def test_same_seed_keeps_same_positions(self):
        kept_indices = []
        for _ in range(2):
            sink = SamplingSink(inner := ListSink(), rate=0.3, seed=42)
            for e in _events(500):
                sink.emit(dict(e))
            kept_indices.append([ev["i"] for ev in inner.events])
        assert kept_indices[0] == kept_indices[1]
        assert 0 < len(kept_indices[0]) < 500

    def test_different_seeds_differ(self):
        kept = {}
        for seed in (1, 2):
            sink = SamplingSink(inner := ListSink(), rate=0.3, seed=seed)
            for e in _events(500):
                sink.emit(dict(e))
            kept[seed] = [ev["i"] for ev in inner.events]
        assert kept[1] != kept[2]

    def test_rate_is_statistically_respected(self):
        sink = SamplingSink(ListSink(), rate=0.25, seed=9)
        for e in _events(4000):
            sink.emit(e)
        assert 0.20 < sink.kept / sink.seen < 0.30
