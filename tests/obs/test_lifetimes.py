"""Placement lifetimes and sink occupancy — the heat-dissipation evidence.

The acceptance property here is the paper's §1.1 "heat dissipation"
claim (Lemmas 5–8): placements routed to the heat-sink are evicted much
sooner than placements that won a bin slot, because the sink is a small,
hot region that churns. We capture a real heat-sink run and assert the
lifetime ordering directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import make_policy
from repro.obs import hooks
from repro.obs.lifetimes import (
    occupancy_series,
    placement_lifetimes,
    read_ndjson,
)
from repro.obs.sinks import ListSink, NDJSONSink
from repro.traces.synthetic import zipf_trace


def _capture_heatsink_run():
    trace = zipf_trace(2048, 20000, alpha=1.0, seed=3)
    policy = make_policy(
        "heatsink", 544, bin_size=16, sink_size=32, sink_prob=0.2, seed=1
    )
    with hooks.capturing(ListSink()) as sink:
        policy.run(trace)
    return sink.events


class TestPairing:
    def test_route_evict_pairing_basic(self):
        events = [
            {"ev": "route", "i": 0, "page": 1, "to": "bin", "bin": 0},
            {"ev": "route", "i": 2, "page": 2, "to": "sink"},
            {"ev": "evict", "i": 5, "page": 1, "from": "bin", "bin": 0},
            {"ev": "evict", "i": 6, "page": 2, "from": "sink"},
            {"ev": "route", "i": 7, "page": 3, "to": "bin", "bin": 1},  # censored
        ]
        by_region = placement_lifetimes(events)
        assert by_region["bin"].lifetimes.tolist() == [5]
        assert by_region["sink"].lifetimes.tolist() == [4]
        assert by_region["bin"].censored == 1
        assert by_region["sink"].censored == 0

    def test_unmatched_evicts_ignored(self):
        events = [{"ev": "evict", "i": 3, "page": 9, "from": "bin"}]
        assert placement_lifetimes(events) == {}

    def test_empty_region_moments_are_nan(self):
        events = [{"ev": "route", "i": 0, "page": 1, "to": "sink"}]
        stats = placement_lifetimes(events)["sink"]
        assert stats.count == 0
        assert np.isnan(stats.mean)
        assert np.isnan(stats.median)
        assert np.isnan(stats.survival([10])[10])

    def test_survival_is_monotone(self):
        events = _capture_heatsink_run()
        stats = placement_lifetimes(events)["bin"]
        surv = stats.survival([1, 10, 100, 1000])
        values = [surv[h] for h in (1, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)


class TestHeatDissipation:
    def test_sink_placements_are_shorter_lived_than_bin_placements(self):
        by_region = placement_lifetimes(_capture_heatsink_run())
        bin_stats, sink_stats = by_region["bin"], by_region["sink"]
        # enough completed placements on both sides to mean something
        assert bin_stats.count > 500
        assert sink_stats.count > 100
        # the dissipation ordering, with a margin: sink placements churn
        assert sink_stats.mean < 0.5 * bin_stats.mean
        assert sink_stats.median < bin_stats.median

    def test_sink_occupancy_reaches_and_holds_capacity(self):
        times, counts = occupancy_series(_capture_heatsink_run(), region="sink")
        assert counts.max() <= 32  # never exceeds sink size
        # quasi-steady state: occupancy in the last quarter stays high
        tail = counts[3 * len(counts) // 4 :]
        assert tail.min() >= 30

    def test_occupancy_every_parameter_downsamples(self):
        events = _capture_heatsink_run()
        t1, c1 = occupancy_series(events, region="sink", every=1)
        t10, c10 = occupancy_series(events, region="sink", every=10)
        assert len(t10) == len(t1) // 10
        assert c10.tolist() == c1[9::10].tolist()


class TestNDJSONRoundTrip:
    def test_capture_to_file_and_analyze(self, tmp_path):
        path = tmp_path / "run.ndjson"
        trace = zipf_trace(512, 4000, alpha=1.0, seed=7)
        policy = make_policy(
            "heatsink", 144, bin_size=16, sink_size=16, sink_prob=0.2, seed=2
        )
        with NDJSONSink(path) as file_sink:
            with hooks.capturing(file_sink):
                policy.run(trace)
        events = list(read_ndjson(path))
        assert len(events) == file_sink.written
        by_region = placement_lifetimes(events)
        assert set(by_region) <= {"bin", "sink"}
        assert sum(s.count + s.censored for s in by_region.values()) > 0

    def test_memory_and_file_captures_agree(self, tmp_path):
        path = tmp_path / "run.ndjson"
        trace = zipf_trace(256, 2000, alpha=1.0, seed=9)
        mem = ListSink()
        with NDJSONSink(path) as file_sink:
            with hooks.capturing(mem):
                hooks.install(file_sink)
                make_policy("heatsink", 80, seed=4).run(trace)
                hooks.uninstall(file_sink)
        assert list(read_ndjson(path)) == mem.events
