"""Obs tests share global switchboards (hooks + tracing) — scrub both."""

from __future__ import annotations

import pytest

from repro.obs import hooks, tracing


@pytest.fixture(autouse=True)
def clean_hooks():
    for sink in hooks.active_sinks():
        hooks.uninstall(sink)
    hooks.reset_clock()
    tracing.shutdown()
    yield
    for sink in hooks.active_sinks():
        hooks.uninstall(sink)
    hooks.reset_clock()
    assert hooks.ENABLED is False
    tracing.shutdown()
    assert tracing.ENABLED is False
