"""Obs tests share one global hook switchboard — scrub it around each test."""

from __future__ import annotations

import pytest

from repro.obs import hooks


@pytest.fixture(autouse=True)
def clean_hooks():
    for sink in hooks.active_sinks():
        hooks.uninstall(sink)
    hooks.reset_clock()
    yield
    for sink in hooks.active_sinks():
        hooks.uninstall(sink)
    hooks.reset_clock()
    assert hooks.ENABLED is False
