"""The hook switchboard: enable flag, logical clock, scoped capture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import make_policy
from repro.obs import hooks
from repro.obs.sinks import ListSink
from repro.traces.synthetic import zipf_trace


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert hooks.ENABLED is False
        assert hooks.active_sinks() == ()

    def test_install_raises_flag_uninstall_lowers_it(self):
        a, b = ListSink(), ListSink()
        hooks.install(a)
        assert hooks.ENABLED is True
        hooks.install(b)
        hooks.uninstall(a)
        assert hooks.ENABLED is True  # b still installed
        hooks.uninstall(b)
        assert hooks.ENABLED is False

    def test_install_is_idempotent(self):
        sink = ListSink()
        hooks.install(sink)
        hooks.install(sink)
        assert hooks.active_sinks() == (sink,)
        hooks.uninstall(sink)
        assert hooks.ENABLED is False

    def test_uninstall_missing_sink_is_fine(self):
        hooks.uninstall(ListSink())
        assert hooks.ENABLED is False

    def test_emit_fans_out_to_every_sink(self):
        a, b = ListSink(), ListSink()
        with hooks.capturing(a):
            hooks.install(b)
            hooks.step()
            hooks.emit({"ev": "x"})
            hooks.uninstall(b)
        assert len(a) == len(b) == 1
        assert a.events[0] is b.events[0]  # shared dict, by design

    def test_capturing_uninstalls_on_exception(self):
        sink = ListSink()
        with pytest.raises(RuntimeError):
            with hooks.capturing(sink):
                raise RuntimeError("boom")
        assert hooks.ENABLED is False


class TestClock:
    def test_steps_stamp_events(self):
        sink = ListSink()
        with hooks.capturing(sink):
            hooks.step()
            hooks.emit({"ev": "a"})
            hooks.emit({"ev": "b"})  # same access -> same index
            hooks.step()
            hooks.emit({"ev": "c"})
        assert [e["i"] for e in sink.events] == [0, 0, 1]

    def test_capturing_resets_clock_by_default(self):
        hooks.step()
        hooks.step()
        with hooks.capturing(ListSink()) as sink:
            hooks.step()
            hooks.emit({"ev": "x"})
        assert sink.events[0]["i"] == 0

    def test_capturing_can_keep_clock(self):
        hooks.step()
        hooks.step()
        with hooks.capturing(ListSink(), reset=False) as sink:
            hooks.step()
            hooks.emit({"ev": "x"})
        assert sink.events[0]["i"] == 2

    def test_now_tracks_steps(self):
        assert hooks.now() == -1
        hooks.step()
        assert hooks.now() == 0


class TestRunLoopIntegration:
    def test_run_emits_one_access_event_per_step(self):
        trace = zipf_trace(256, 2000, alpha=1.0, seed=11)
        policy = make_policy("lru", 64)
        with hooks.capturing(ListSink()) as sink:
            result = policy.run(trace)
        accesses = [e for e in sink.events if e["ev"] == "access"]
        assert len(accesses) == 2000
        assert [e["i"] for e in accesses] == list(range(2000))
        assert sum(not e["hit"] for e in accesses) == result.num_misses

    def test_instrumented_run_is_bit_identical_to_plain_run(self):
        trace = zipf_trace(512, 5000, alpha=1.0, seed=5)
        observed = make_policy("heatsink", 272, seed=1)
        plain = make_policy("heatsink", 272, seed=1)
        with hooks.capturing(ListSink()):
            observed_result = observed.run(trace)
        plain_result = plain.run(trace)
        np.testing.assert_array_equal(observed_result.hits, plain_result.hits)
