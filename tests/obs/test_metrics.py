"""Instruments and the registry: counters, gauges, histograms, families."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_goes_anywhere(self):
        g = Gauge()
        g.set(5)
        g.dec(7)
        g.inc(1)
        assert g.value == -1.0


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(0.0) == 0.0
        assert h.percentile(1.0) == 0.0
        assert h.buckets()[-1] == (float("inf"), 0)

    def test_quantile_bounds(self):
        h = Histogram()
        h.observe(3e-6)
        with pytest.raises(ConfigurationError):
            h.percentile(-0.01)
        with pytest.raises(ConfigurationError):
            h.percentile(1.01)

    def test_q0_and_q1(self):
        h = Histogram()
        for v in (1.5e-6, 1e-4, 3e-3):
            h.observe(v)
        # q=0 clamps to rank 1 -> smallest occupied bucket's upper bound
        assert h.percentile(0.0) == pytest.approx(2e-6)
        assert h.percentile(1.0) == pytest.approx(4.096e-3)

    def test_overflow_rank_reports_observed_max(self):
        h = Histogram(base=1e-6, num_buckets=3)  # top finite bound 4µs
        h.observe(2e-6)
        h.observe(123.0)
        assert h.percentile(1.0) == pytest.approx(123.0)
        bounds = [b for b, _ in h.buckets()]
        assert bounds == [1e-6, 2e-6, 4e-6, float("inf")]

    def test_buckets_are_cumulative(self):
        h = Histogram(base=1.0, num_buckets=3)  # bounds 1, 2, 4
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.buckets() == [(1.0, 1), (2.0, 2), (4.0, 3), (float("inf"), 4)]

    def test_negative_values_clamped_to_zero(self):
        h = Histogram()
        h.observe(-1.0)
        assert h.count == 1
        assert h.total == 0.0
        assert h.max == 0.0

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(base=0.0)
        with pytest.raises(ConfigurationError):
            Histogram(num_buckets=0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.counter("a_total", labels={"op": "get"}) is not reg.counter("a_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("0bad")
        with pytest.raises(ConfigurationError):
            reg.counter("ok_total", labels={"0bad": "v"})

    def test_register_live_instrument(self):
        reg = MetricsRegistry()
        h = Histogram(base=1.0, num_buckets=2)
        reg.register("live_seconds", h, "live")
        h.observe(1.5)  # mutate after registration: collect sees it
        (family,) = [f for f in reg.collect() if f.name == "live_seconds"]
        count_sample = [s for s in family.samples if s.suffix == "_count"][0]
        assert count_sample.value == 1.0

    def test_collect_expands_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", base=1.0, num_buckets=2).observe(1.5)
        (family,) = reg.collect()
        suffixes = [s.suffix for s in family.samples]
        assert suffixes == ["_bucket", "_bucket", "_bucket", "_sum", "_count"]
        inf_bucket = family.samples[2]
        assert ("le", "+Inf") in inf_bucket.labels
        assert inf_bucket.value == 1.0

    def test_render_smoke(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "hits").inc(5)
        text = reg.render()
        assert "# TYPE hits_total counter" in text
        assert "hits_total 5" in text
