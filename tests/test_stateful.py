"""Hypothesis stateful (rule-based) fuzzing of the complex policies.

The per-access invariant checks in `tests/helpers.py` drive policies with
random traces; the machines here additionally interleave *resets* and
*bulk runs* with single accesses, and cross-validate residency against an
independent model after every step. HEAT-SINK and the rearranging cache
have the most internal state, so they get machines.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.assoc.heatsink import HeatSinkLRU
from repro.core.assoc.rearrange import RearrangingCache

PAGES = st.integers(0, 40)


class HeatSinkMachine(RuleBasedStateMachine):
    """Model-based fuzz of HEAT-SINK LRU (both sink policies)."""

    @initialize(sink_policy=st.sampled_from(["2-random", "lru"]), seed=st.integers(0, 100))
    def setup(self, sink_policy, seed):
        self.cache = HeatSinkLRU(
            24, bin_size=3, sink_size=6, sink_prob=0.3,
            sink_policy=sink_policy, seed=seed,
        )
        self.resident: set[int] = set()

    @rule(page=PAGES)
    def access(self, page):
        before = set(self.cache.contents())
        assert before == self.resident
        hit = self.cache.access(page)
        assert hit == (page in before)
        after = set(self.cache.contents())
        assert page in after
        # at most one eviction per miss, none on hit
        if hit:
            assert after == before
        else:
            assert before - after == before - after  # trivially true; sizes below
            assert len(before - after) <= 1
            assert after - before == {page}
        self.resident = after

    @rule(pages=st.lists(PAGES, min_size=1, max_size=30))
    def bulk_run(self, pages):
        result = self.cache.run(np.asarray(pages, dtype=np.int64), reset=False)
        assert result.num_accesses == len(pages)
        self.resident = set(self.cache.contents())

    @rule()
    def reset(self):
        self.cache.reset()
        self.resident = set()

    @invariant()
    def capacity_respected(self):
        assert len(self.cache) <= self.cache.capacity
        assert self.cache.bin_loads().max(initial=0) <= self.cache.bin_size

    @invariant()
    def location_map_consistent(self):
        assert len(self.cache.contents()) == len(self.cache._loc)


class RearrangeMachine(RuleBasedStateMachine):
    """Model-based fuzz of the BFS rearranging cache."""

    @initialize(seed=st.integers(0, 100), budget=st.integers(1, 32))
    def setup(self, seed, budget):
        self.cache = RearrangingCache(12, d=2, seed=seed, max_bfs_nodes=budget)
        self.resident: set[int] = set()

    @rule(page=PAGES)
    def access(self, page):
        before = set(self.cache.contents())
        assert before == self.resident
        hit = self.cache.access(page)
        assert hit == (page in before)
        after = set(self.cache.contents())
        assert page in after
        if not hit:
            # rearrangement may move pages but evicts at most one
            assert len(before - after) <= 1
        self.resident = after

    @rule()
    def reset(self):
        self.cache.reset()
        self.resident = set()

    @invariant()
    def pages_in_eligible_slots(self):
        for page in self.cache.contents():
            assert self.cache.slot_of(page) in self.cache.dist.positions(page)

    @invariant()
    def slots_and_index_agree(self):
        occupants = [p for p in self.cache._slot_page if p != -1]
        assert sorted(occupants) == sorted(self.cache._pos_of)


TestHeatSinkMachine = HeatSinkMachine.TestCase
TestHeatSinkMachine.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
TestRearrangeMachine = RearrangeMachine.TestCase
TestRearrangeMachine.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
