"""End-to-end integration tests across module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core.registry import available_policies, make_policy
from repro.sim.results import ResultsTable
from repro.sim.sweep import ParameterGrid, run_sweep
from tests.helpers import _extra_kwargs


class TestCliFlows:
    def test_save_simulate_mrc_round_trip(self, tmp_path, capsys):
        trace = repro.zipf_trace(2048, 30_000, alpha=1.0, seed=5)
        path = repro.save_trace(trace, tmp_path / "t.npz")

        assert main(["simulate", "--trace", str(path), "--policy", "lru",
                     "--capacity", "512", "--window", "5000"]) == 0
        out = capsys.readouterr().out
        assert "miss" in out and "LRU" in out and "windowed" in out

        assert main(["mrc", "--trace", str(path), "--sizes", "128,512,2048"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "512" in out

        assert main(["mrc", "--trace", str(path), "--sizes", "128,512",
                     "--shards", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "SHARDS" in out

    def test_simulate_reports_consistent_misses(self, tmp_path, capsys):
        trace = repro.zipf_trace(512, 5_000, alpha=1.0, seed=6)
        path = repro.save_trace(trace, tmp_path / "t.npz")
        main(["simulate", "--trace", str(path), "--policy", "fifo", "--capacity", "128"])
        out = capsys.readouterr().out
        reported = int(out.split("misses   : ")[1].split()[0])
        assert reported == repro.FIFOCache(128).run(trace).num_misses

    def test_experiment_csv_round_trip(self, tmp_path, capsys):
        main(["run", "L6-COMPONENTS", "--scale", "smoke", "--out", str(tmp_path)])
        capsys.readouterr()
        table = ResultsTable.from_csv(tmp_path / "l6-components_smoke.csv")
        assert len(table) > 0
        assert "lemma6_bound" in table.columns


class TestEveryRegisteredPolicyEndToEnd:
    def test_all_policies_run_on_shared_trace(self, small_zipf_trace):
        """Every registry entry simulates cleanly and lands in sane bounds,
        with OPT as the floor."""
        capacity = 64
        opt_misses = repro.belady_miss_count(small_zipf_trace, capacity)
        distinct = small_zipf_trace.num_distinct
        for name in available_policies():
            policy = make_policy(name, capacity, **_extra_kwargs(name, capacity))
            result = policy.run(small_zipf_trace)
            assert result.num_misses >= opt_misses, name
            assert result.num_misses >= min(distinct, capacity), name
            assert result.num_misses <= result.num_accesses, name

    def test_policies_are_reproducible_via_registry(self, small_zipf_trace):
        for name in ("2-random", "heatsink", "marking", "cuckoo", "rearrange"):
            kwargs = _extra_kwargs(name, 64)
            a = make_policy(name, 64, **kwargs).run(small_zipf_trace)
            b = make_policy(name, 64, **kwargs).run(small_zipf_trace)
            assert np.array_equal(a.hits, b.hits), name


def _sweep_task(params: dict, seed) -> dict:
    import repro as _repro

    seed_int = int(seed.generate_state(1)[0])
    trace = _repro.zipf_trace(512, 5_000, alpha=1.0, seed=seed_int)
    policy = _repro.PLruCache(params["capacity"], d=params["d"], seed=seed_int)
    return {"miss_rate": policy.run(trace).miss_rate}


class TestParallelSweepWithPolicies:
    def test_workers_match_serial(self):
        grid = ParameterGrid(capacity=[64, 128], d=[1, 2])
        serial = run_sweep(_sweep_task, grid, repetitions=2, seed=3)
        parallel = run_sweep(_sweep_task, grid, repetitions=2, seed=3, workers=2)
        key = lambda r: (r["capacity"], r["d"], r["rep"])
        s_rows = sorted(serial, key=key)
        p_rows = sorted(parallel, key=key)
        assert [r["miss_rate"] for r in s_rows] == [r["miss_rate"] for r in p_rows]

    def test_more_associativity_helps_in_sweep(self):
        grid = ParameterGrid(capacity=[128], d=[1, 4])
        table = run_sweep(_sweep_task, grid, repetitions=3, seed=4)
        by_d = {}
        for row in table:
            by_d.setdefault(row["d"], []).append(row["miss_rate"])
        assert np.mean(by_d[4]) <= np.mean(by_d[1])


class TestTraceToolchain:
    def test_msr_export_reimport_simulate(self, tmp_path):
        trace = repro.working_set_trace(200, 5_000, locality=0.9, seed=8)
        from repro.traces.io import read_msr_csv, write_msr_csv

        path = tmp_path / "t.csv"
        write_msr_csv(trace, path)
        back = read_msr_csv(path)
        assert np.array_equal(back.pages, trace.pages)
        a = repro.LRUCache(128).run(trace)
        b = repro.LRUCache(128).run(back)
        assert np.array_equal(a.hits, b.hits)

    def test_sampled_workflow_speed_consistency(self):
        """SHARDS preprocessing composes with arbitrary policies: the
        sample is a valid trace for any simulator."""
        trace = repro.zipf_trace(4096, 60_000, alpha=1.0, seed=9)
        sample = repro.spatial_sample(trace, 0.25, seed=10)
        result = repro.LRUCache(256).run(sample)
        assert 0.0 <= result.miss_rate <= 1.0
        assert result.num_accesses == len(sample)
