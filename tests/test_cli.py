"""Tests for the repro-experiment CLI."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "T2-LOWERBOUND"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.workers is None

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "X", "--scale", "galactic"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T4-HEATSINK" in out
        assert "L5-ORIENT" in out

    def test_run_smoke_prints_table(self, capsys):
        assert main(["run", "L6-COMPONENTS", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "L6-COMPONENTS" in out
        assert "|" in out  # markdown table

    def test_run_writes_csv(self, tmp_path, capsys):
        assert (
            main(
                ["run", "L6-COMPONENTS", "--scale", "smoke", "--out", str(tmp_path)]
            )
            == 0
        )
        files = list(Path(tmp_path).glob("*.csv"))
        assert len(files) == 1
        assert files[0].name == "l6-components_smoke.csv"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            main(["run", "NOT-AN-EXPERIMENT", "--scale", "smoke"])

    def test_characterize_command(self, tmp_path, capsys):
        import repro

        trace = repro.zipf_trace(256, 10_000, alpha=1.0, seed=1)
        path = repro.save_trace(trace, tmp_path / "t.npz")
        assert main(["characterize", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "zipf_alpha_hat" in out
        assert "footprint" in out
