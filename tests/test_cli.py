"""Tests for the repro-experiment CLI."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "T2-LOWERBOUND"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.workers is None

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "X", "--scale", "galactic"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T4-HEATSINK" in out
        assert "L5-ORIENT" in out

    def test_run_smoke_prints_table(self, capsys):
        assert main(["run", "L6-COMPONENTS", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "L6-COMPONENTS" in out
        assert "|" in out  # markdown table

    def test_run_writes_csv(self, tmp_path, capsys):
        assert (
            main(
                ["run", "L6-COMPONENTS", "--scale", "smoke", "--out", str(tmp_path)]
            )
            == 0
        )
        files = list(Path(tmp_path).glob("*.csv"))
        assert len(files) == 1
        assert files[0].name == "l6-components_smoke.csv"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            main(["run", "NOT-AN-EXPERIMENT", "--scale", "smoke"])

    def test_characterize_command(self, tmp_path, capsys):
        import repro

        trace = repro.zipf_trace(256, 10_000, alpha=1.0, seed=1)
        path = repro.save_trace(trace, tmp_path / "t.npz")
        assert main(["characterize", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "zipf_alpha_hat" in out
        assert "footprint" in out


class TestServiceCommands:
    def test_policies_lists_names_and_signatures(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "heatsink" in out
        assert "HeatSinkLRU(" in out
        assert "sink_prob" in out  # constructor parameters are shown
        assert "lru" in out

    def test_policies_covers_whole_registry(self, capsys):
        from repro.core.registry import available_policies

        main(["policies"])
        out = capsys.readouterr().out
        for name in available_policies():
            assert name in out

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == "heatsink"
        assert args.capacity == 1024
        assert args.port == 7070
        assert args.shards == 1
        assert args.frame == "auto"

    def test_serve_parser_sharding_and_framing_flags(self):
        args = build_parser().parse_args(["serve", "--shards", "4", "--frame", "binary"])
        assert args.shards == 4
        assert args.frame == "binary"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--frame", "carrier-pigeon"])

    def test_loadgen_parser_wire_flags(self):
        args = build_parser().parse_args(["loadgen", "--zipf", "64,100"])
        assert args.batch == 1
        assert args.connections == 1
        assert args.frame == "ndjson"
        args = build_parser().parse_args(
            ["loadgen", "--zipf", "64,100", "--batch", "32",
             "--connections", "2", "--frame", "binary"]
        )
        assert args.batch == 32
        assert args.connections == 2
        assert args.frame == "binary"

    def test_loadgen_requires_a_trace_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])

    def test_loadgen_sources_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--trace", "t.npz", "--zipf", "64,100"]
            )

    def test_loadgen_end_to_end_parity_with_offline(self, capsys):
        """CLI acceptance: loadgen vs a served policy vs the offline run."""
        import asyncio
        import threading

        import repro
        from repro.core.registry import make_policy
        from repro.service.server import CacheServer
        from repro.service.store import PolicyStore

        policy = make_policy("heatsink", 256, seed=9)
        offline = make_policy("heatsink", 256, seed=9).run(
            repro.zipf_trace(1024, 8_000, alpha=1.0, seed=21)
        )

        loop = asyncio.new_event_loop()
        server = CacheServer(PolicyStore(policy))
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            assert (
                main(
                    [
                        "loadgen",
                        "--port", str(server.port),
                        "--zipf", "1024,8000,1.0",
                        "--seed", "21",
                    ]
                )
                == 0
            )
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=5)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.close()
        out = capsys.readouterr().out
        assert f"rate {offline.hit_rate:.4f}" in out
        assert f"server hit : {offline.hit_rate:.4f}" in out


class TestStatsCommand:
    def test_stats_parser_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.command == "stats"
        assert args.port == 7070
        assert args.prom is False
        assert args.watch == 0.0

    def test_serve_parser_metrics_flags(self):
        args = build_parser().parse_args(
            ["serve", "--metrics-port", "9090", "--stats-interval", "5"]
        )
        assert args.metrics_port == 9090
        assert args.stats_interval == 5.0
        # both off by default
        defaults = build_parser().parse_args(["serve"])
        assert defaults.metrics_port == 0
        assert defaults.stats_interval == 0.0

    def test_loadgen_parser_report_interval(self):
        args = build_parser().parse_args(
            ["loadgen", "--zipf", "64,100", "--report-interval", "2"]
        )
        assert args.report_interval == 2.0

    def _serving(self):
        import asyncio
        import threading

        from repro.core.registry import make_policy
        from repro.service.server import CacheServer
        from repro.service.store import PolicyStore

        loop = asyncio.new_event_loop()
        server = CacheServer(PolicyStore(make_policy("heatsink", 64, seed=0)))
        loop.run_until_complete(server.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        def stop():
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=5)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.close()

        return server, stop

    def test_stats_one_shot_against_live_server(self, capsys):
        server, stop = self._serving()
        try:
            assert main(["stats", "--port", str(server.port)]) == 0
        finally:
            stop()
        out = capsys.readouterr().out
        assert "policy     : HEAT-SINK" in out
        assert "accesses" in out
        assert "get" in out  # per-op latency rows

    def test_stats_prom_against_live_server(self, capsys):
        from repro.obs.exposition import parse_prometheus

        server, stop = self._serving()
        try:
            assert main(["stats", "--port", str(server.port), "--prom"]) == 0
        finally:
            stop()
        out = capsys.readouterr().out
        parsed = parse_prometheus(out)
        assert parsed.value("repro_hits_total") == 0.0
        assert parsed.types["repro_op_latency_seconds"] == "histogram"


class TestClusterCommand:
    def test_cluster_parser_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.command == "cluster"
        assert args.policy == "heatsink"
        assert args.workers == 4
        assert args.vnodes == 64
        assert args.frame == "auto"
        assert args.pool == 2
        assert args.upstream_retries == 1
        assert args.drain == 5.0

    def test_cluster_parser_flags(self):
        args = build_parser().parse_args(
            [
                "cluster",
                "--policy", "lru",
                "--capacity", "4096",
                "--workers", "8",
                "--frame", "binary",
                "--vnodes", "128",
                "--pool", "3",
                "--metrics-port", "9100",
            ]
        )
        assert args.policy == "lru"
        assert args.capacity == 4096
        assert args.workers == 8
        assert args.frame == "binary"
        assert args.vnodes == 128
        assert args.pool == 3
        assert args.metrics_port == 9100

    def test_cluster_rejects_unknown_frame(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--frame", "smoke-signal"])
