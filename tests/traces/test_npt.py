"""Tests for repro.traces.npt — the chunked binary trace format."""

from __future__ import annotations

import json
import pickle
import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError, TraceFormatError
from repro.traces.base import Trace
from repro.traces.io import read_msr_csv, write_msr_csv
from repro.traces.npt import MAGIC, NptTraceStream, NptWriter, read_npt, write_npt
from repro.traces.streaming import MsrCsvStream, ZipfTraceStream
from repro.traces.synthetic import zipf_trace


def _stream_pages(stream):
    parts = [c.copy() for c in stream.chunks()]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


class TestRoundTrip:
    def test_trace_round_trip(self, tmp_path):
        t = zipf_trace(200, 5000, alpha=1.0, seed=7)
        path = write_npt(t, tmp_path / "t.npt", chunk=777)
        back = read_npt(path)
        assert np.array_equal(back.pages, t.pages)
        assert back.name == t.name
        assert back.params["alpha"] == 1.0

    def test_stream_round_trip(self, tmp_path):
        s = ZipfTraceStream(300, 4000, alpha=1.1, seed=2, chunk=500)
        path = write_npt(s, tmp_path / "s.npt")
        assert np.array_equal(read_npt(path).pages, _stream_pages(s))

    def test_csv_to_npt_to_trace(self, tmp_path):
        # the full conversion chain: CSV -> stream -> .npt -> Trace
        t = zipf_trace(64, 900, alpha=0.9, seed=5)
        csv_path = tmp_path / "t.csv"
        write_msr_csv(t, csv_path)
        npt_path = write_npt(MsrCsvStream(csv_path, chunk=128), tmp_path / "t.npt")
        assert np.array_equal(read_npt(npt_path).pages, read_msr_csv(csv_path).pages)

    def test_empty_trace(self, tmp_path):
        path = write_npt(Trace(np.empty(0, dtype=np.int64)), tmp_path / "e.npt")
        s = NptTraceStream(path)
        assert s.length == 0
        assert s.num_chunks == 0
        assert len(read_npt(path)) == 0

    def test_dtype_downcast_shrinks_file(self, tmp_path):
        pages = np.arange(10_000, dtype=np.int64) % 200  # fits in u1
        small = write_npt(Trace(pages), tmp_path / "small.npt")
        big = write_npt(Trace(pages + (1 << 40)), tmp_path / "big.npt")
        assert small.stat().st_size < big.stat().st_size / 4
        assert np.array_equal(read_npt(small).pages, pages)
        assert np.array_equal(read_npt(big).pages, pages + (1 << 40))

    def test_per_chunk_dtype(self, tmp_path):
        with NptWriter(tmp_path / "m.npt") as w:
            w.append(np.array([1, 2, 3], dtype=np.int64))       # u1
            w.append(np.array([1 << 20], dtype=np.int64))        # u4
        s = NptTraceStream(tmp_path / "m.npt")
        assert _stream_pages(s).tolist() == [1, 2, 3, 1 << 20]


class TestWriter:
    def test_append_after_close(self, tmp_path):
        w = NptWriter(tmp_path / "w.npt")
        w.append([1, 2])
        w.close()
        with pytest.raises(TraceError):
            w.append([3])

    def test_close_idempotent(self, tmp_path):
        w = NptWriter(tmp_path / "w.npt")
        w.append([1])
        assert w.close() == w.close()

    def test_failed_write_leaves_unsealed_file(self, tmp_path):
        path = tmp_path / "boom.npt"
        with pytest.raises(RuntimeError):
            with NptWriter(path) as w:
                w.append([1, 2, 3])
                raise RuntimeError("producer failed")
        # the half-written file must not parse as a sealed trace
        with pytest.raises(TraceFormatError):
            NptTraceStream(path)

    def test_empty_chunks_skipped(self, tmp_path):
        with NptWriter(tmp_path / "w.npt") as w:
            w.append(np.empty(0, dtype=np.int64))
            w.append([5])
            w.append(np.empty(0, dtype=np.int64))
        s = NptTraceStream(tmp_path / "w.npt")
        assert s.num_chunks == 1
        assert _stream_pages(s).tolist() == [5]


class TestCorruptionDetection:
    def _good(self, tmp_path):
        t = zipf_trace(50, 2000, alpha=1.0, seed=1)
        return write_npt(t, tmp_path / "good.npt", chunk=256)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            NptTraceStream(tmp_path / "absent.npt")

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.npt"
        path.write_bytes(b"REPRO")
        with pytest.raises(TraceFormatError, match="too short"):
            NptTraceStream(path)

    def test_bad_magic(self, tmp_path):
        path = self._good(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTMAGIC"
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="bad magic"):
            NptTraceStream(path)

    def test_bad_version(self, tmp_path):
        path = self._good(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[8] = 99
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="version 99"):
            NptTraceStream(path)

    @pytest.mark.parametrize("cut", [1, 8, 100, 2000])
    def test_truncation_detected(self, tmp_path, cut):
        path = self._good(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - cut])
        with pytest.raises(TraceFormatError):
            NptTraceStream(path)

    def test_corrupt_footer_json(self, tmp_path):
        path = self._good(tmp_path)
        raw = bytearray(path.read_bytes())
        footer_len, _ = struct.unpack("<Q8s", raw[-16:])
        start = len(raw) - 16 - footer_len
        raw[start : start + 4] = b"\xff\xfe\x00{"
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="corrupt index footer"):
            NptTraceStream(path)

    def test_footer_missing_chunks_key(self, tmp_path):
        path = tmp_path / "nochunks.npt"
        footer = json.dumps({"version": 1}).encode()
        path.write_bytes(
            MAGIC + bytes([1]) + footer + struct.pack("<Q8s", len(footer), b"TPNORPER")
        )
        with pytest.raises(TraceFormatError, match="missing 'chunks'"):
            NptTraceStream(path)

    def test_index_entry_past_data_region(self, tmp_path):
        path = tmp_path / "overrun.npt"
        footer = json.dumps(
            {"version": 1, "chunks": [{"offset": 9, "count": 1000, "dtype": "<i8"}]}
        ).encode()
        path.write_bytes(
            MAGIC + bytes([1]) + b"\x00" * 16 + footer
            + struct.pack("<Q8s", len(footer), b"TPNORPER")
        )
        with pytest.raises(TraceFormatError, match="truncated"):
            NptTraceStream(path)

    def test_unknown_dtype_in_index(self, tmp_path):
        path = tmp_path / "dtype.npt"
        footer = json.dumps(
            {"version": 1, "chunks": [{"offset": 9, "count": 1, "dtype": "<f8"}]}
        ).encode()
        path.write_bytes(
            MAGIC + bytes([1]) + b"\x00" * 8 + footer
            + struct.pack("<Q8s", len(footer), b"TPNORPER")
        )
        with pytest.raises(TraceFormatError, match="unknown dtype"):
            NptTraceStream(path)


class TestStreamWindows:
    def _path(self, tmp_path):
        # 10 stored chunks of 100 accesses each
        with NptWriter(tmp_path / "w.npt", name="windowed") as w:
            for i in range(10):
                w.append(np.full(100, i, dtype=np.int64))
        return tmp_path / "w.npt"

    def test_native_chunking(self, tmp_path):
        s = NptTraceStream(self._path(tmp_path))
        blocks = list(s.chunks())
        assert len(blocks) == 10
        assert all(b.size == 100 for b in blocks)
        assert s.num_chunks == 10
        assert s.length == 1000

    def test_rechunking(self, tmp_path):
        s = NptTraceStream(self._path(tmp_path), chunk=64)
        blocks = list(s.chunks())
        assert all(b.size == 64 for b in blocks[:-1])
        assert sum(b.size for b in blocks) == 1000
        full = NptTraceStream(self._path(tmp_path))
        assert np.array_equal(_stream_pages(s), _stream_pages(full))

    def test_rechunk_larger_than_stored(self, tmp_path):
        s = NptTraceStream(self._path(tmp_path), chunk=350)
        sizes = [b.size for b in s.chunks()]
        assert sizes == [350, 350, 300]

    def test_chunk_slice_shards(self, tmp_path):
        path = self._path(tmp_path)
        full = NptTraceStream(path)
        a = full.chunk_slice(0, 4)
        b = full.chunk_slice(4, 10)
        assert a.length == 400 and b.length == 600
        stitched = np.concatenate([_stream_pages(a), _stream_pages(b)])
        assert np.array_equal(stitched, _stream_pages(full))

    def test_chunk_slice_of_slice(self, tmp_path):
        path = self._path(tmp_path)
        inner = NptTraceStream(path).chunk_slice(2, 8).chunk_slice(1, 3)
        assert _stream_pages(inner).tolist() == [3] * 100 + [4] * 100

    def test_window_bounds_checked(self, tmp_path):
        path = self._path(tmp_path)
        with pytest.raises(ConfigurationError):
            NptTraceStream(path, start_chunk=11)
        with pytest.raises(ConfigurationError):
            NptTraceStream(path, start_chunk=5, stop_chunk=3)
        with pytest.raises(ConfigurationError):
            NptTraceStream(path, chunk=0)

    def test_pickle_round_trip(self, tmp_path):
        s = NptTraceStream(self._path(tmp_path), chunk=130, start_chunk=2, stop_chunk=7)
        clone = pickle.loads(pickle.dumps(s))
        assert np.array_equal(_stream_pages(clone), _stream_pages(s))
        assert clone.length == s.length
        assert s.cheap_pickle
