"""Tests for repro.traces.io — persistence and MSR CSV."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import TraceError, TraceFormatError
from repro.traces.base import Trace
from repro.traces.io import (
    iter_msr_pages,
    load_trace,
    read_msr_csv,
    save_trace,
    write_msr_csv,
)
from repro.traces.synthetic import zipf_trace


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path):
        t = zipf_trace(64, 1000, alpha=1.1, seed=5)
        path = save_trace(t, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded == t
        assert loaded.params["alpha"] == 1.1

    def test_suffix_added(self, tmp_path):
        t = Trace(np.array([1, 2], dtype=np.int64))
        path = save_trace(t, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert load_trace(path) == t

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "absent.npz")

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(path)


class TestMsrCsv:
    HEADER_FREE_ROWS = (
        "128166372003061629,hm,1,Read,8192,8192,100\n"
        "128166372003061630,hm,1,Write,0,4096,90\n"
        "128166372003061631,hm,1,Read,4096,12288,80\n"
    )

    def test_basic_parse(self):
        t = read_msr_csv(io.StringIO(self.HEADER_FREE_ROWS), block_bytes=4096)
        # row1: blocks 2,3 ; row2: block 0 ; row3: blocks 1,2,3
        assert list(t) == [2, 3, 0, 1, 2, 3]

    def test_filter_request_types(self):
        t = read_msr_csv(
            io.StringIO(self.HEADER_FREE_ROWS),
            block_bytes=4096,
            request_types=("Read",),
        )
        assert list(t) == [2, 3, 1, 2, 3]

    def test_no_expand(self):
        t = read_msr_csv(
            io.StringIO(self.HEADER_FREE_ROWS), block_bytes=4096, expand_multiblock=False
        )
        assert list(t) == [2, 0, 1]

    def test_max_accesses(self):
        t = read_msr_csv(
            io.StringIO(self.HEADER_FREE_ROWS), block_bytes=4096, max_accesses=3
        )
        assert len(t) == 3

    def test_comments_and_blanks_skipped(self):
        body = "# comment\n\n" + self.HEADER_FREE_ROWS
        t = read_msr_csv(io.StringIO(body), block_bytes=4096)
        assert len(t) == 6

    def test_malformed_row(self):
        with pytest.raises(TraceError):
            read_msr_csv(io.StringIO("1,h,1,Read\n"))
        with pytest.raises(TraceError):
            read_msr_csv(io.StringIO("1,h,1,Read,abc,10,1\n"))
        with pytest.raises(TraceError):
            read_msr_csv(io.StringIO("1,h,1,Read,-5,10,1\n"))

    def test_bad_block_bytes(self):
        with pytest.raises(TraceError):
            read_msr_csv(io.StringIO(""), block_bytes=0)

    def test_write_read_round_trip(self, tmp_path):
        t = zipf_trace(32, 200, alpha=1.0, seed=1)
        path = tmp_path / "msr.csv"
        write_msr_csv(t, path)
        back = read_msr_csv(path)
        assert list(back) == list(t)

    def test_write_to_buffer(self):
        buf = io.StringIO()
        write_msr_csv(Trace(np.array([0, 1], dtype=np.int64)), buf)
        buf.seek(0)
        assert list(read_msr_csv(buf)) == [0, 1]


class TestMsrCsvHardening:
    """Malformed-input behaviour: clear TraceFormatError, line numbers."""

    ROWS = TestMsrCsv.HEADER_FREE_ROWS

    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(self.ROWS.replace("\n", "\r\n").encode())
        assert list(read_msr_csv(path, block_bytes=4096)) == [2, 3, 0, 1, 2, 3]

    def test_trailing_commas_tolerated(self):
        body = "\n".join(line + ",," for line in self.ROWS.splitlines()) + "\n"
        t = read_msr_csv(io.StringIO(body), block_bytes=4096)
        assert list(t) == [2, 3, 0, 1, 2, 3]

    def test_blank_and_whitespace_lines(self):
        body = "\n   \n" + self.ROWS + "\t\n"
        assert len(read_msr_csv(io.StringIO(body), block_bytes=4096)) == 6

    def test_non_integer_field_reports_line(self):
        body = self.ROWS + "128,hm,1,Read,xyz,10,1\n"
        with pytest.raises(TraceFormatError, match="line 4") as exc_info:
            read_msr_csv(io.StringIO(body))
        assert exc_info.value.line == 4
        assert "xyz" in str(exc_info.value)

    def test_short_row_reports_line(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            read_msr_csv(io.StringIO("1,h,1,Read,0,10,1\n1,h,Read\n"))

    def test_negative_field_reports_line(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            read_msr_csv(io.StringIO("1,h,1,Read,-5,10,1\n"))

    def test_empty_request_type(self):
        with pytest.raises(TraceFormatError, match="request-type"):
            read_msr_csv(io.StringIO("1,h,1, ,0,10,1\n"))

    def test_path_in_message(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,h,1,Read,abc,10,1\n")
        with pytest.raises(TraceFormatError, match="bad.csv"):
            read_msr_csv(path)
        try:
            read_msr_csv(path)
        except TraceFormatError as exc:
            assert exc.path == path
            assert exc.line == 1

    def test_error_is_trace_error_subclass(self):
        # callers catching the old TraceError keep working
        assert issubclass(TraceFormatError, TraceError)


class TestIterMsrPages:
    """The incremental parser itself: chunk shapes and budgets."""

    def _csv(self, n):
        t = Trace(np.arange(n, dtype=np.int64) % 17)
        buf = io.StringIO()
        write_msr_csv(t, buf)
        return buf

    def test_chunk_sizes_bounded(self):
        buf = self._csv(1000)
        buf.seek(0)
        chunks = list(iter_msr_pages(buf, chunk=64))
        assert all(c.size == 64 for c in chunks[:-1])
        assert sum(c.size for c in chunks) == 1000
        assert all(c.dtype == np.int64 for c in chunks)

    def test_matches_materializing_wrapper(self):
        buf = self._csv(500)
        buf.seek(0)
        streamed = np.concatenate(list(iter_msr_pages(buf, chunk=33)))
        buf.seek(0)
        assert np.array_equal(streamed, read_msr_csv(buf).pages)

    def test_max_accesses_mid_row(self):
        # one request covering 4 blocks, budget cuts inside the expansion
        body = "1,h,1,Read,0,16384,1\n"
        out = np.concatenate(list(iter_msr_pages(io.StringIO(body), max_accesses=3)))
        assert out.tolist() == [0, 1, 2]

    def test_max_accesses_stops_reading(self):
        body = "1,h,1,Read,0,4096,1\n" + "garbage-line-that-would-fail\n"
        out = list(iter_msr_pages(io.StringIO(body), max_accesses=1))
        assert np.concatenate(out).tolist() == [0]

    def test_bad_chunk(self):
        with pytest.raises(TraceError):
            list(iter_msr_pages(io.StringIO(""), chunk=0))
