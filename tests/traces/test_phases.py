"""Tests for repro.traces.phases — working-set / phase-change workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.phases import phase_change_trace, working_set_trace


class TestWorkingSet:
    def test_locality_share(self):
        t = working_set_trace(100, 50_000, locality=0.8, universe=1000, seed=1)
        inside = float((t.pages < 100).mean())
        assert 0.77 < inside < 0.83

    def test_full_locality(self):
        t = working_set_trace(50, 5000, locality=1.0, universe=500, seed=2)
        assert t.max_page < 50

    def test_universe_equals_ws(self):
        t = working_set_trace(50, 1000, locality=0.5, universe=50, seed=3)
        assert t.max_page < 50

    def test_default_universe(self):
        t = working_set_trace(10, 1000, locality=0.5, seed=4)
        assert t.params["universe"] == 160

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            working_set_trace(10, 100, locality=1.5)
        with pytest.raises(ConfigurationError):
            working_set_trace(10, 100, universe=5)
        with pytest.raises(ConfigurationError):
            working_set_trace(0, 100)


class TestPhaseChange:
    def test_length(self):
        t = phase_change_trace(50, 1000, 4, seed=1)
        assert len(t) == 4000

    def test_zero_overlap_distinct_sets(self):
        t = phase_change_trace(50, 500, 3, overlap=0.0, seed=2)
        p0 = set(t.pages[:500].tolist())
        p1 = set(t.pages[500:1000].tolist())
        assert p0.isdisjoint(p1)

    def test_overlap_carries_pages(self):
        t = phase_change_trace(100, 3000, 2, overlap=0.5, seed=3)
        p0 = set(t.pages[:3000].tolist())
        p1 = set(t.pages[3000:].tolist())
        shared = p0 & p1
        # about half of the (well-sampled) phase sets should be shared
        assert len(shared) >= 30

    def test_working_set_size_per_phase(self):
        t = phase_change_trace(64, 20_000, 2, overlap=0.25, seed=4)
        assert len(set(t.pages[:20_000].tolist())) <= 64

    def test_locality_escapes_are_cold(self):
        t = phase_change_trace(50, 2000, 2, locality=0.9, seed=5)
        pages, counts = np.unique(t.pages, return_counts=True)
        singles = (counts == 1).sum()
        # ~10% of accesses escape to never-reused cold pages
        assert singles >= 0.05 * len(t)

    def test_zipf_within_phase(self):
        t = phase_change_trace(64, 30_000, 1, zipf_alpha=1.5, seed=6)
        counts = np.sort(np.bincount(t.pages))[::-1]
        assert counts[0] > 5 * max(1, counts[20])

    def test_deterministic(self):
        a = phase_change_trace(32, 100, 3, overlap=0.3, seed=7)
        b = phase_change_trace(32, 100, 3, overlap=0.3, seed=7)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            phase_change_trace(0, 10, 1)
        with pytest.raises(ConfigurationError):
            phase_change_trace(10, 10, 1, overlap=1.0)
        with pytest.raises(ConfigurationError):
            phase_change_trace(10, 10, 1, locality=0.0)
