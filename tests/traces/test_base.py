"""Tests for repro.traces.base — the Trace container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.traces.base import Trace, as_page_array, concat_traces, trace_stats


class TestTraceConstruction:
    def test_basic(self):
        t = Trace(np.array([0, 1, 2], dtype=np.int64), name="x", params={"a": 1})
        assert len(t) == 3
        assert t.name == "x"
        assert t.params == {"a": 1}

    def test_pages_immutable(self):
        t = Trace(np.array([0, 1], dtype=np.int64))
        with pytest.raises(ValueError):
            t.pages[0] = 5

    def test_negative_pages_rejected(self):
        with pytest.raises(TraceError):
            Trace(np.array([0, -1], dtype=np.int64))

    def test_2d_rejected(self):
        with pytest.raises(TraceError):
            Trace(np.zeros((2, 2), dtype=np.int64))

    def test_empty_trace_ok(self):
        t = Trace(np.empty(0, dtype=np.int64))
        assert len(t) == 0
        assert t.num_distinct == 0
        assert t.max_page == -1

    def test_indexing_and_slicing(self):
        t = Trace(np.array([5, 6, 7], dtype=np.int64), name="s")
        assert t[1] == 6
        sub = t[1:]
        assert isinstance(sub, Trace)
        assert list(sub) == [6, 7]
        assert sub.name == "s"

    def test_equality(self):
        a = Trace(np.array([1, 2], dtype=np.int64), name="n")
        b = Trace(np.array([1, 2], dtype=np.int64), name="n")
        c = Trace(np.array([1, 3], dtype=np.int64), name="n")
        assert a == b
        assert a != c

    def test_with_name_merges_params(self):
        t = Trace(np.array([1], dtype=np.int64), params={"a": 1})
        t2 = t.with_name("new", b=2)
        assert t2.name == "new"
        assert t2.params == {"a": 1, "b": 2}

    def test_remapped_dense_ids(self):
        t = Trace(np.array([100, 7, 100, 55], dtype=np.int64))
        r = t.remapped()
        assert r.max_page == 2
        assert r.num_distinct == 3
        # structure (equality pattern) is preserved
        assert r[0] == r[2]
        assert r[0] != r[1]


class TestAsPageArray:
    def test_accepts_trace(self):
        t = Trace(np.array([1, 2], dtype=np.int64))
        assert as_page_array(t) is t.pages

    def test_accepts_list(self):
        out = as_page_array([1, 2, 3])
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_accepts_integral_float(self):
        out = as_page_array(np.array([1.0, 2.0]))
        assert out.tolist() == [1, 2]

    def test_rejects_fractional_float(self):
        with pytest.raises(TraceError):
            as_page_array(np.array([1.5]))

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            as_page_array([-1])


class TestConcat:
    def test_concat_preserves_order(self):
        a = Trace(np.array([1, 2], dtype=np.int64))
        b = Trace(np.array([3], dtype=np.int64))
        c = concat_traces([a, b])
        assert list(c) == [1, 2, 3]

    def test_concat_empty(self):
        assert len(concat_traces([])) == 0


class TestTraceStats:
    def test_empty(self):
        stats = trace_stats(np.empty(0, dtype=np.int64))
        assert stats["length"] == 0
        assert stats["distinct"] == 0

    def test_no_reuse(self):
        stats = trace_stats(np.arange(10))
        assert stats["reuse_fraction"] == 0.0
        assert np.isnan(stats["mean_reuse_gap"])

    def test_full_reuse(self):
        stats = trace_stats(np.zeros(10, dtype=np.int64))
        assert stats["distinct"] == 1
        assert stats["reuse_fraction"] == pytest.approx(0.9)
        assert stats["mean_reuse_gap"] == pytest.approx(1.0)

    def test_known_gaps(self):
        # page 1 at 0 and 3 (gap 3); page 2 at 1 and 2 (gap 1)
        stats = trace_stats(np.array([1, 2, 2, 1], dtype=np.int64))
        assert stats["reuse_fraction"] == pytest.approx(0.5)
        assert stats["mean_reuse_gap"] == pytest.approx(2.0)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_property_matches_bruteforce(self, pages):
        stats = trace_stats(np.asarray(pages, dtype=np.int64))
        # brute-force gap computation
        last: dict[int, int] = {}
        gaps = []
        for i, p in enumerate(pages):
            if p in last:
                gaps.append(i - last[p])
            last[p] = i
        assert stats["reuse_fraction"] == pytest.approx(len(gaps) / len(pages))
        if gaps:
            assert stats["mean_reuse_gap"] == pytest.approx(float(np.mean(gaps)))
