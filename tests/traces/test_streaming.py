"""Tests for repro.traces.streaming — chunked constant-memory streams."""

from __future__ import annotations

import io
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.traces.base import Trace
from repro.traces.io import write_msr_csv, save_trace
from repro.traces.npt import write_npt
from repro.traces.streaming import (
    ArrayTraceStream,
    IncrementalRemapper,
    MsrCsvStream,
    Prefetcher,
    RemappedStream,
    TraceStream,
    UniformTraceStream,
    ZipfTraceStream,
    as_trace_stream,
    open_trace_stream,
)
from repro.traces.npt import NptTraceStream
from repro.traces.synthetic import uniform_trace, zipf_trace


def _collect(stream: TraceStream) -> np.ndarray:
    parts = [c.copy() for c in stream.chunks()]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


class TestArrayTraceStream:
    def test_chunking_covers_trace(self):
        t = zipf_trace(64, 1000, alpha=1.0, seed=3)
        s = ArrayTraceStream(t, chunk=96)
        blocks = list(s.chunks())
        assert all(b.size == 96 for b in blocks[:-1])
        assert np.array_equal(np.concatenate(blocks), t.pages)
        assert s.length == len(t)
        assert s.name == t.name
        assert s.params["alpha"] == 1.0

    def test_reiterable(self):
        s = ArrayTraceStream(np.arange(10, dtype=np.int64), chunk=3)
        assert np.array_equal(_collect(s), _collect(s))

    def test_iter_yields_ints(self):
        s = ArrayTraceStream([5, 6, 7], chunk=2)
        assert list(s) == [5, 6, 7]
        assert all(isinstance(x, int) for x in s)

    def test_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            ArrayTraceStream([1], chunk=0)

    def test_materialize_round_trip(self):
        t = zipf_trace(32, 500, alpha=0.8, seed=9)
        back = ArrayTraceStream(t, chunk=77).materialize()
        assert back == t

    def test_materialize_prefix(self):
        s = ArrayTraceStream(np.arange(100, dtype=np.int64), chunk=30)
        prefix = s.materialize(max_accesses=45)
        assert list(prefix) == list(range(45))

    def test_materialize_empty(self):
        s = ArrayTraceStream(np.empty(0, dtype=np.int64))
        assert len(s.materialize()) == 0


class TestSyntheticStreams:
    def test_uniform_matches_materialized_generator(self):
        # rng.integers consumes the bit stream identically chunked or not
        s = UniformTraceStream(128, 5000, seed=7, chunk=999)
        t = uniform_trace(128, 5000, seed=7)
        assert np.array_equal(_collect(s), t.pages)

    def test_uniform_chunk_invariance(self):
        a = UniformTraceStream(64, 2000, seed=1, chunk=100)
        b = UniformTraceStream(64, 2000, seed=1, chunk=1999)
        assert np.array_equal(_collect(a), _collect(b))

    def test_zipf_deterministic_and_reiterable(self):
        s = ZipfTraceStream(256, 3000, alpha=1.1, seed=5, chunk=500)
        first = _collect(s)
        second = _collect(s)
        assert np.array_equal(first, second)
        assert first.size == 3000
        assert first.min() >= 0 and first.max() < 256

    def test_zipf_chunk_size_does_not_change_draws(self):
        a = ZipfTraceStream(100, 1500, alpha=1.0, seed=2, chunk=64)
        b = ZipfTraceStream(100, 1500, alpha=1.0, seed=2, chunk=1500)
        assert np.array_equal(_collect(a), _collect(b))

    def test_zipf_skew(self):
        pages = _collect(ZipfTraceStream(1000, 20_000, alpha=1.2, seed=0, shuffle_ranks=False))
        counts = np.bincount(pages, minlength=1000)
        assert counts[0] > counts[100] > counts[900]

    def test_zipf_pickle_round_trip(self):
        s = ZipfTraceStream(64, 400, alpha=0.9, seed=11, chunk=128)
        clone = pickle.loads(pickle.dumps(s))
        assert np.array_equal(_collect(s), _collect(clone))
        assert len(pickle.dumps(s)) < 2000  # params only, not the CDF

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfTraceStream(0, 10)
        with pytest.raises(ConfigurationError):
            ZipfTraceStream(10, 0)
        with pytest.raises(ConfigurationError):
            ZipfTraceStream(10, 10, alpha=-1.0)
        with pytest.raises(ConfigurationError):
            UniformTraceStream(0, 10)


class TestMsrCsvStream:
    def test_round_trip(self, tmp_path):
        t = zipf_trace(32, 400, alpha=1.0, seed=4)
        path = tmp_path / "t.csv"
        write_msr_csv(t, path)
        s = MsrCsvStream(path, chunk=37)
        assert np.array_equal(_collect(s), t.pages)
        # re-iterable: the file is reopened per pass
        assert np.array_equal(_collect(s), t.pages)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            MsrCsvStream(tmp_path / "nope.csv")

    def test_pickles_as_path(self, tmp_path):
        t = Trace(np.arange(20, dtype=np.int64))
        path = tmp_path / "p.csv"
        write_msr_csv(t, path)
        s = MsrCsvStream(path, chunk=7)
        clone = pickle.loads(pickle.dumps(s))
        assert np.array_equal(_collect(clone), t.pages)
        assert s.cheap_pickle


class TestIncrementalRemapper:
    def test_first_appearance_order(self):
        with IncrementalRemapper() as remapper:
            out = remapper.remap(np.array([50, 10, 50, 99], dtype=np.int64))
            # within one chunk, new ids are numbered in ascending id order
            assert out.tolist() == [1, 0, 1, 2]
            out2 = remapper.remap(np.array([99, 7], dtype=np.int64))
            assert out2.tolist() == [2, 3]
            assert remapper.num_tokens == 4

    def test_spill_equivalence(self, tmp_path):
        rng = np.random.default_rng(0)
        chunks = [rng.integers(0, 500, size=300).astype(np.int64) for _ in range(6)]
        with IncrementalRemapper(max_resident=1 << 20) as big:
            ref = [big.remap(c) for c in chunks]
            assert big.spills == 0
        with IncrementalRemapper(max_resident=16, spill_dir=tmp_path) as small:
            out = [small.remap(c) for c in chunks]
            assert small.spills > 0
            assert small.num_tokens == big.num_tokens
        for a, b in zip(ref, out):
            assert np.array_equal(a, b)

    def test_empty_chunk(self):
        with IncrementalRemapper() as remapper:
            assert remapper.remap(np.empty(0, dtype=np.int64)).size == 0

    def test_bad_max_resident(self):
        with pytest.raises(ConfigurationError):
            IncrementalRemapper(max_resident=0)


class TestRemappedStream:
    def test_dense_tokens(self):
        sparse = ArrayTraceStream(
            np.array([10**12, 5, 10**12, 7, 5], dtype=np.int64), chunk=2
        )
        out = _collect(sparse.remapped())
        assert out.max() < 3
        # same id always maps to the same token
        pages = np.array([10**12, 5, 10**12, 7, 5])
        tokens = {}
        for p, tok in zip(pages.tolist(), out.tolist()):
            assert tokens.setdefault(p, tok) == tok

    def test_reiteration_identical(self):
        s = ZipfTraceStream(64, 800, seed=3, chunk=100).remapped()
        assert np.array_equal(_collect(s), _collect(s))

    def test_spill_matches_no_spill(self, tmp_path):
        inner = UniformTraceStream(400, 3000, seed=6, chunk=250)
        plain = _collect(RemappedStream(inner, max_resident=1 << 20))
        spilled = _collect(RemappedStream(inner, max_resident=8, spill_dir=tmp_path))
        assert np.array_equal(plain, spilled)

    def test_metadata_carried(self):
        s = ZipfTraceStream(32, 100, seed=0).remapped()
        assert s.name == "zipf"
        assert s.params["remapped"] is True
        assert s.length == 100


class TestPrefetcher:
    def test_matches_direct_iteration(self):
        s = ZipfTraceStream(128, 4000, seed=8, chunk=333)
        direct = _collect(s)
        prefetched = np.concatenate([c.copy() for c in Prefetcher(s)])
        assert np.array_equal(direct, prefetched)

    def test_yields_readonly_views(self):
        for block in Prefetcher(ArrayTraceStream(np.arange(10, dtype=np.int64), chunk=4)):
            assert not block.flags.writeable
            with pytest.raises(ValueError):
                block[0] = 99

    def test_error_propagates(self):
        class Exploding(TraceStream):
            def chunks(self):
                yield np.arange(4, dtype=np.int64)
                raise RuntimeError("decoder blew up")

        it = iter(Prefetcher(Exploding()))
        next(it)
        with pytest.raises(RuntimeError, match="decoder blew up"):
            for _ in it:
                pass

    def test_early_break_shuts_down(self):
        s = ZipfTraceStream(64, 100_000, seed=1, chunk=1000)
        for i, _block in enumerate(Prefetcher(s)):
            if i == 2:
                break
        # a second pass still works (no leaked state between iterations)
        assert sum(b.size for b in Prefetcher(s)) == 100_000

    def test_plain_iterator_source(self):
        blocks = [np.arange(3, dtype=np.int64), np.arange(5, dtype=np.int64)]
        out = [b.copy() for b in Prefetcher(iter(blocks))]
        assert [o.tolist() for o in out] == [[0, 1, 2], [0, 1, 2, 3, 4]]

    def test_bad_depth(self):
        with pytest.raises(ConfigurationError):
            Prefetcher(ArrayTraceStream([1]), depth=0)


class TestCoercionAndOpen:
    def test_as_trace_stream_passthrough(self):
        s = UniformTraceStream(8, 10, seed=0)
        assert as_trace_stream(s) is s

    def test_as_trace_stream_wraps(self):
        t = zipf_trace(16, 50, seed=0)
        s = as_trace_stream(t, chunk=10)
        assert isinstance(s, ArrayTraceStream)
        assert np.array_equal(_collect(s), t.pages)

    def test_open_csv(self, tmp_path):
        t = zipf_trace(16, 80, seed=1)
        path = tmp_path / "a.csv"
        write_msr_csv(t, path)
        s = open_trace_stream(path, chunk=9)
        assert isinstance(s, MsrCsvStream)
        assert np.array_equal(_collect(s), t.pages)

    def test_open_npz(self, tmp_path):
        t = zipf_trace(16, 80, seed=2)
        path = save_trace(t, tmp_path / "a.npz")
        s = open_trace_stream(path)
        assert isinstance(s, ArrayTraceStream)
        assert np.array_equal(_collect(s), t.pages)

    def test_open_npt(self, tmp_path):
        t = zipf_trace(16, 80, seed=3)
        path = tmp_path / "a.npt"
        write_npt(t, path, chunk=32)
        s = open_trace_stream(path)
        assert isinstance(s, NptTraceStream)
        assert np.array_equal(_collect(s), t.pages)

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "a.wat"
        path.write_bytes(b"")
        with pytest.raises(TraceError, match="unknown trace suffix"):
            open_trace_stream(path)
