"""Tests for repro.traces.synthetic — workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.synthetic import (
    cyclic_scan_trace,
    interleave_traces,
    loop_mixture_trace,
    sawtooth_trace,
    sequential_scan_trace,
    uniform_trace,
    zipf_trace,
)


class TestUniform:
    def test_shape_and_range(self):
        t = uniform_trace(100, 5000, seed=1)
        assert len(t) == 5000
        assert t.max_page < 100
        assert t.pages.min() >= 0

    def test_deterministic(self):
        assert uniform_trace(10, 100, seed=3) == uniform_trace(10, 100, seed=3)

    def test_seed_matters(self):
        assert uniform_trace(10, 100, seed=3) != uniform_trace(10, 100, seed=4)

    def test_covers_pages(self):
        t = uniform_trace(8, 2000, seed=2)
        assert t.num_distinct == 8

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            uniform_trace(0, 10)
        with pytest.raises(ConfigurationError):
            uniform_trace(10, 0)


class TestZipf:
    def test_range(self):
        t = zipf_trace(50, 3000, alpha=1.0, seed=1)
        assert 0 <= t.pages.min() and t.max_page < 50

    def test_alpha_zero_is_uniform_like(self):
        t = zipf_trace(16, 40_000, alpha=0.0, seed=5)
        counts = np.bincount(t.pages, minlength=16)
        assert counts.max() < 1.3 * counts.min()

    def test_high_alpha_concentrates(self):
        t = zipf_trace(100, 20_000, alpha=2.0, seed=5)
        counts = np.sort(np.bincount(t.pages, minlength=100))[::-1]
        assert counts[0] > 0.4 * len(t)

    def test_unshuffled_rank_ordering(self):
        t = zipf_trace(64, 100_000, alpha=1.2, seed=9, shuffle_ranks=False)
        counts = np.bincount(t.pages, minlength=64)
        # rank 0 must be the most popular by a wide margin
        assert counts[0] == counts.max()
        assert counts[0] > 3 * counts[20]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_trace(10, 10, alpha=-1.0)


class TestScans:
    def test_sequential(self):
        t = sequential_scan_trace(5, repeats=2)
        assert list(t) == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4]

    def test_cyclic_offset(self):
        t = cyclic_scan_trace(4, 6, offset=2)
        assert list(t) == [2, 3, 0, 1, 2, 3]

    def test_sawtooth_turning_points(self):
        t = sawtooth_trace(4, repeats=1)
        assert list(t) == [0, 1, 2, 3, 2, 1]

    def test_sawtooth_small_n(self):
        assert list(sawtooth_trace(2)) == [0, 1]
        assert list(sawtooth_trace(1)) == [0]


class TestLoopMixture:
    def test_each_loop_cycles_in_order(self):
        t = loop_mixture_trace([3, 5], 2000, seed=1)
        pages = t.pages
        first = pages[pages < 3]
        # loop 0 pages must appear in cyclic order 0,1,2,0,1,2,...
        assert np.array_equal(first, np.arange(len(first)) % 3)

    def test_disjoint_ranges(self):
        t = loop_mixture_trace([4, 4], 1000, seed=2)
        assert t.max_page < 8

    def test_weights_respected(self):
        t = loop_mixture_trace([2, 2], 10_000, weights=[0.9, 0.1], seed=3)
        share_first = float((t.pages < 2).mean())
        assert 0.85 < share_first < 0.95

    def test_bad_weights(self):
        with pytest.raises(ConfigurationError):
            loop_mixture_trace([2, 2], 10, weights=[1.0])
        with pytest.raises(ConfigurationError):
            loop_mixture_trace([2, 2], 10, weights=[-1.0, 2.0])

    def test_empty_loops_rejected(self):
        with pytest.raises(ConfigurationError):
            loop_mixture_trace([], 10)


class TestInterleave:
    def test_preserves_per_trace_order(self):
        a = sequential_scan_trace(5)
        b = sequential_scan_trace(3)
        t = interleave_traces([a, b], seed=4)
        assert len(t) == 8
        # a's pages appear shifted by 0, b's by 5 (disjoint id spaces)
        a_part = t.pages[t.pages < 5]
        b_part = t.pages[t.pages >= 5] - 5
        assert a_part.tolist() == [0, 1, 2, 3, 4]
        assert b_part.tolist() == [0, 1, 2]

    def test_needs_input(self):
        with pytest.raises(ConfigurationError):
            interleave_traces([])
