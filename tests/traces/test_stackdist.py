"""Tests for repro.traces.stackdist — stack distances and synthesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.stackdist import (
    lru_miss_curve_from_distances,
    measure_stack_distances,
    stack_distance_trace,
)


def brute_force_distances(pages: list[int]) -> list[int]:
    """Reference implementation: explicit LRU stack."""
    stack: list[int] = []
    out = []
    for p in pages:
        if p in stack:
            depth = stack.index(p)
            out.append(depth)
            stack.pop(depth)
        else:
            out.append(-1)
        stack.insert(0, p)
    return out


class TestMeasure:
    def test_first_accesses_are_infinite(self):
        d = measure_stack_distances(np.arange(5))
        assert d.tolist() == [-1] * 5

    def test_immediate_reuse_is_zero(self):
        d = measure_stack_distances(np.array([3, 3, 3]))
        assert d.tolist() == [-1, 0, 0]

    def test_known_sequence(self):
        pages = np.array([1, 2, 3, 1, 2, 1])
        assert measure_stack_distances(pages).tolist() == [-1, -1, -1, 2, 2, 1]

    def test_empty(self):
        assert measure_stack_distances(np.empty(0, dtype=np.int64)).size == 0

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=120))
    def test_property_matches_bruteforce(self, pages):
        fast = measure_stack_distances(np.asarray(pages, dtype=np.int64))
        assert fast.tolist() == brute_force_distances(pages)

    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=100),
        st.integers(1, 8),
    )
    def test_property_distances_predict_lru(self, pages, capacity):
        """An access hits LRU(C) iff its stack distance is in [0, C)."""
        arr = np.asarray(pages, dtype=np.int64)
        distances = measure_stack_distances(arr)
        predicted_hits = (distances >= 0) & (distances < capacity)
        actual = LRUCache(capacity).run(arr)
        assert np.array_equal(predicted_hits, actual.hits)


class TestMissCurve:
    def test_matches_direct_lru(self):
        rng = np.random.Generator(np.random.PCG64(3))
        pages = rng.integers(0, 40, size=2000, dtype=np.int64)
        distances = measure_stack_distances(pages)
        sizes = [1, 2, 4, 8, 16, 32, 64]
        curve = lru_miss_curve_from_distances(distances, sizes)
        for size, misses in zip(sizes, curve.tolist()):
            assert misses == LRUCache(size).run(pages).num_misses

    def test_monotone_nonincreasing(self):
        pages = np.array([1, 2, 1, 3, 2, 4, 1])
        curve = lru_miss_curve_from_distances(
            measure_stack_distances(pages), [1, 2, 3, 4]
        )
        assert np.all(np.diff(curve) <= 0)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            lru_miss_curve_from_distances(np.array([-1]), [0])


class TestSynthesis:
    def test_length_and_determinism(self):
        a = stack_distance_trace(500, [1.0, 0.5, 0.25], seed=1)
        b = stack_distance_trace(500, [1.0, 0.5, 0.25], seed=1)
        assert len(a) == 500
        assert a == b

    def test_depth_zero_only_gives_single_page(self):
        t = stack_distance_trace(100, [1.0], new_page_weight=0.0, seed=2)
        # first access creates page 0 (empty stack -> new), everything after
        # re-touches depth 0
        assert t.num_distinct == 1

    def test_all_new_pages(self):
        t = stack_distance_trace(50, [0.0], new_page_weight=1.0, seed=3)
        assert t.num_distinct == 50

    def test_miss_curve_matches_sampled_depths(self):
        """LRU(C) hits exactly the accesses sampled at depth < C."""
        t = stack_distance_trace(20_000, [4.0, 2.0, 1.0, 0.5], new_page_weight=0.5, seed=4)
        distances = measure_stack_distances(t.pages)
        for capacity in (1, 2, 4):
            expected_misses = int(((distances < 0) | (distances >= capacity)).sum())
            assert LRUCache(capacity).run(t).num_misses == expected_misses

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            stack_distance_trace(0, [1.0])
        with pytest.raises(ConfigurationError):
            stack_distance_trace(10, [])
        with pytest.raises(ConfigurationError):
            stack_distance_trace(10, [-1.0])
        with pytest.raises(ConfigurationError):
            stack_distance_trace(10, [0.0], new_page_weight=0.0)
