"""Tests for repro.traces.addresses — hardware address streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.d_lru import PLruCache
from repro.core.assoc.hashdist import ModuloSetHashes, SetAssociativeHashes
from repro.errors import ConfigurationError
from repro.traces.addresses import (
    addresses_to_pages,
    matrix_traversal,
    pointer_chase,
    strided_walk,
)


class TestAddressesToPages:
    def test_line_mapping(self):
        trace = addresses_to_pages(np.array([0, 63, 64, 128]), line_bytes=64)
        assert list(trace) == [0, 0, 1, 2]

    def test_dedup_consecutive(self):
        trace = addresses_to_pages(
            np.array([0, 8, 16, 64, 72]), line_bytes=64, dedup_consecutive=True
        )
        assert list(trace) == [0, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            addresses_to_pages(np.array([0]), line_bytes=0)
        with pytest.raises(ConfigurationError):
            addresses_to_pages(np.array([-1]))
        with pytest.raises(ConfigurationError):
            addresses_to_pages(np.zeros((2, 2), dtype=np.int64))


class TestStridedWalk:
    def test_line_stride(self):
        trace = strided_walk(4, stride_bytes=128, line_bytes=64)
        assert list(trace) == [0, 2, 4, 6]

    def test_repeats(self):
        trace = strided_walk(3, stride_bytes=64, repeats=2)
        assert list(trace) == [0, 1, 2, 0, 1, 2]

    def test_aligned_stride_aliases_modulo_sets(self):
        """The motivating pathology: stride = line*num_sets puts every
        access in modulo-set 0; hashed sets spread them out."""
        n, d = 64, 4
        num_sets = n // d
        trace = strided_walk(2 * d, stride_bytes=64 * num_sets, repeats=20)
        modulo = PLruCache(n, dist=ModuloSetHashes(n, d))
        hashed = PLruCache(n, dist=SetAssociativeHashes(n, d, seed=1))
        assert modulo.run(trace).miss_rate == 1.0  # 8 lines, 4 ways, 1 set
        assert hashed.run(trace).miss_rate < 0.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            strided_walk(0, stride_bytes=64)
        with pytest.raises(ConfigurationError):
            strided_walk(4, stride_bytes=0)


class TestMatrixTraversal:
    def test_row_major_is_sequential(self):
        trace = matrix_traversal(2, 16, order="row", element_bytes=8, line_bytes=64)
        # 16 elements * 8B = 2 lines per row
        assert list(trace) == [0] * 8 + [1] * 8 + [2] * 8 + [3] * 8

    def test_col_major_strides(self):
        trace = matrix_traversal(4, 8, order="col", element_bytes=8, line_bytes=64)
        # column walk: row stride = 8*8B = 1 line
        assert list(trace)[:4] == [0, 1, 2, 3]

    def test_same_lines_either_order(self):
        a = matrix_traversal(8, 32, order="row")
        b = matrix_traversal(8, 32, order="col")
        assert set(a.pages.tolist()) == set(b.pages.tolist())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            matrix_traversal(0, 4)
        with pytest.raises(ConfigurationError):
            matrix_traversal(4, 4, order="diagonal")


class TestPointerChase:
    def test_cycle_structure(self):
        trace = pointer_chase(8, 24, node_bytes=64, seed=1)
        assert len(trace) == 24
        first, second, third = trace.pages[:8], trace.pages[8:16], trace.pages[16:24]
        assert np.array_equal(first, second)
        assert np.array_equal(second, third)
        assert set(first.tolist()) == set(range(8))

    def test_partial_lap(self):
        trace = pointer_chase(10, 7, seed=2)
        assert len(trace) == 7

    def test_deterministic(self):
        assert pointer_chase(16, 50, seed=3) == pointer_chase(16, 50, seed=3)

    def test_lru_adversarial_when_oversized(self):
        from repro.core.fully.lru import LRUCache

        trace = pointer_chase(100, 5000, seed=4)
        assert LRUCache(99).run(trace).miss_rate == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pointer_chase(0, 10)
        with pytest.raises(ConfigurationError):
            pointer_chase(10, 10, node_bytes=0)
