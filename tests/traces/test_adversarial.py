"""Tests for repro.traces.adversarial — the Theorem-2 sequence builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.d_lru import PLruCache
from repro.core.assoc.hashdist import ExplicitHashes
from repro.errors import ConfigurationError
from repro.traces.adversarial import build_theorem2_sequence, find_happy_pairs


class TestBuilderStructure:
    def test_populate_prefix(self):
        seq = build_theorem2_sequence(256, populate_factor=4, rounds=2, seed=1)
        assert seq.t0 == 4 * 256
        assert np.array_equal(seq.trace.pages[: seq.t0], seq.populate)
        assert np.unique(seq.populate).size == seq.populate.size

    def test_sets_disjoint(self):
        seq = build_theorem2_sequence(256, rounds=2, seed=2)
        pop = set(seq.populate.tolist())
        a = set(seq.light_a.tolist())
        b = set(seq.light_b.tolist())
        h = set(seq.heavy.tolist())
        assert a.isdisjoint(b)
        assert a.isdisjoint(pop)
        assert b.isdisjoint(pop)
        assert h <= pop

    def test_round_pattern_layout(self):
        seq = build_theorem2_sequence(128, populate_factor=2, rounds=3, seed=3)
        hn, m = seq.heavy.size, seq.light_a.size
        round_len = 2 * hn + 2 * m
        suffix = seq.trace.pages[seq.t0 :]
        assert suffix.size == 3 * round_len
        one = suffix[:round_len]
        assert np.array_equal(one[:hn], seq.heavy)
        assert np.array_equal(one[hn : hn + m], seq.light_a)
        assert np.array_equal(one[hn + m : 2 * hn + m], seq.heavy)
        assert np.array_equal(one[2 * hn + m :], seq.light_b)
        # all rounds identical
        assert np.array_equal(suffix[:round_len], suffix[round_len : 2 * round_len])

    def test_default_sizing_regime(self):
        """|H| ~ n/6 (in expectation) and |A| = |B| = n//6 by default."""
        n = 3000
        seq = build_theorem2_sequence(n, rounds=1, seed=4)
        assert seq.light_a.size == n // 6
        assert 0.5 * n / 6 < seq.heavy.size < 1.5 * n / 6
        assert seq.post_populate_working_set < 0.75 * n

    def test_deterministic(self):
        a = build_theorem2_sequence(128, rounds=2, seed=9)
        b = build_theorem2_sequence(128, rounds=2, seed=9)
        assert a.trace == b.trace

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            build_theorem2_sequence(0)
        with pytest.raises(ConfigurationError):
            build_theorem2_sequence(64, populate_factor=0)
        with pytest.raises(ConfigurationError):
            build_theorem2_sequence(64, heavy_rate=0.0)
        with pytest.raises(ConfigurationError):
            build_theorem2_sequence(64, rounds=0)
        with pytest.raises(ConfigurationError):
            build_theorem2_sequence(64, light_size=0)


class TestLemma1Saturation:
    def test_populate_fills_hash_tuples(self):
        """Lemma 1 (scaled): after populate, >= 95% of fresh pages have all
        their hashes on occupied slots."""
        n = 1024
        seq = build_theorem2_sequence(n, rounds=1, seed=5)
        cache = PLruCache(n, d=2, seed=6)
        cache.run(seq.trace[: seq.t0])
        fresh = np.arange(10**7, 10**7 + 500, dtype=np.int64)
        positions = cache.dist.positions_batch(fresh)
        occupied = cache.slot_pages()[positions] != -1
        fraction_full = float(occupied.all(axis=1).mean())
        assert fraction_full >= 0.95


class TestHappyPairs:
    def _forced_pair_cache(self, n: int = 64):
        """Hand-build hashes so that (a, b) is a guaranteed happy pair."""
        seq = build_theorem2_sequence(
            n, populate_factor=2, light_size=4, rounds=5, seed=11
        )
        heavy = seq.heavy.tolist()
        a_pages = seq.light_a.tolist()
        b_pages = seq.light_b.tolist()
        table: dict[int, list[int]] = {}
        # populate pages: page i -> slots deterministic spread
        for i, page in enumerate(seq.populate.tolist()):
            table[page] = [i % n, (i + 1) % n]
        # to make slot contents at t0 predictable we rebuild below; here we
        # only need *some* configuration, so craft it directly:
        # slot 0 shared by a0 and b0; slot 1 / 2 hold heavy pages
        if len(heavy) < 2:
            pytest.skip("sampled heavy set too small for the forced construction")
        h0, h1 = heavy[0], heavy[1]
        table[h0] = [1, 1]
        table[h1] = [2, 2]
        table[a_pages[0]] = [0, 1]
        table[b_pages[0]] = [0, 2]
        # all other lights/heavies far away from slots 0,1,2
        safe = [(5 + 2 * i) % (n - 4) + 3 for i in range(len(table))]
        idx = 0
        for page in heavy[2:] + a_pages[1:] + b_pages[1:]:
            table[page] = [3 + (idx % (n - 3)), 3 + ((idx + 1) % (n - 3))]
            idx += 2
        # keep populate pages that are not heavy out of slots 0..2 as well,
        # except two fillers that occupy slots 1 and 2 paths; heavy pages
        # themselves are populate pages so they will sit in slots 1 and 2.
        for i, page in enumerate(seq.populate.tolist()):
            if page in (h0, h1):
                continue
            table[page] = [3 + (i % (n - 3)), 3 + ((i * 7 + 1) % (n - 3))]
        # one populate page must land in slot 0 so it is non-negligible
        filler = next(p for p in seq.populate.tolist() if p not in set(heavy))
        table[filler] = [0, 0]
        dist = ExplicitHashes(n, table)
        return seq, PLruCache(n, dist=dist)

    def test_forced_pair_detected(self):
        seq, cache = self._forced_pair_cache()
        pairs = find_happy_pairs(seq, cache)
        assert (int(seq.light_a[0]), int(seq.light_b[0])) in pairs

    def test_forced_pair_misses_every_round(self):
        """The paper's core dynamic: each happy-pair access is a miss."""
        seq, cache = self._forced_pair_cache()
        cache.reset()
        result = cache.run(seq.trace)
        a0, b0 = int(seq.light_a[0]), int(seq.light_b[0])
        suffix_pages = seq.trace.pages[seq.t0 :]
        suffix_hits = result.hits[seq.t0 :]
        a_hits = suffix_hits[suffix_pages == a0]
        b_hits = suffix_hits[suffix_pages == b0]
        assert not a_hits.any(), "happy-pair member a must miss every access"
        assert not b_hits.any(), "happy-pair member b must miss every access"

    def test_pairs_disjoint(self):
        seq = build_theorem2_sequence(512, rounds=2, seed=13)
        cache = PLruCache(512, d=2, seed=14)
        pairs = find_happy_pairs(seq, cache)
        flat = [p for pair in pairs for p in pair]
        assert len(flat) == len(set(flat))
