"""Tests for SHARDS spatial sampling and the sampled MRC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mrc import exact_lru_mrc, mrc_gap, policy_mrc, sampled_lru_mrc
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.sampling import shards_lru_mrc, spatial_sample
from repro.traces.synthetic import zipf_trace


class TestSpatialSample:
    def test_page_closure(self):
        """A page is either fully kept or fully dropped."""
        trace = zipf_trace(256, 20_000, alpha=0.8, seed=1)
        sample = spatial_sample(trace, 0.3, seed=2)
        kept = set(np.unique(sample.pages).tolist())
        for page in kept:
            full_count = int((trace.pages == page).sum())
            kept_count = int((sample.pages == page).sum())
            assert full_count == kept_count

    def test_rate_one_keeps_everything(self):
        trace = zipf_trace(64, 1000, seed=3)
        assert np.array_equal(spatial_sample(trace, 1.0).pages, trace.pages)

    def test_sampled_fraction_of_pages(self):
        trace = zipf_trace(4096, 50_000, alpha=0.0, seed=4)
        sample = spatial_sample(trace, 0.25, seed=5)
        frac = np.unique(sample.pages).size / np.unique(trace.pages).size
        assert 0.2 < frac < 0.3

    def test_deterministic(self):
        trace = zipf_trace(128, 5000, seed=6)
        a = spatial_sample(trace, 0.5, seed=7)
        b = spatial_sample(trace, 0.5, seed=7)
        assert a == b

    def test_order_preserved(self):
        trace = zipf_trace(128, 5000, seed=8)
        sample = spatial_sample(trace, 0.5, seed=9)
        kept_pages = set(np.unique(sample.pages).tolist())
        manual = trace.pages[np.isin(trace.pages, list(kept_pages))]
        assert np.array_equal(sample.pages, manual)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spatial_sample(np.array([1, 2]), 0.0)
        with pytest.raises(ConfigurationError):
            spatial_sample(np.array([1, 2]), 1.5)


class TestShardsMrc:
    def test_estimates_exact_curve_uniform_popularity(self):
        """With uniform page popularity the raw estimator is already tight;
        SHARDS_adj overcorrects slightly (its hit-crediting assumption is
        tuned for skewed popularity) but stays within a few points."""
        trace = zipf_trace(4096, 150_000, alpha=0.0, seed=10)
        sizes = [256, 1024, 2048]
        exact = exact_lru_mrc(trace, sizes)
        raw = shards_lru_mrc(trace, sizes, rate=0.1, seed=11, adjust=False)
        adjusted = shards_lru_mrc(trace, sizes, rate=0.1, seed=11)
        assert mrc_gap(raw, exact)["max_abs_gap"] < 0.05
        assert mrc_gap(adjusted, exact)["max_abs_gap"] < 0.08

    def test_adjustment_fixes_skewed_bias(self):
        """The SHARDS_adj headline: on skewed popularity at a low rate the
        raw estimator is badly biased and the adjustment repairs it."""
        trace = zipf_trace(16_384, 200_000, alpha=0.9, seed=10)
        sizes = [512, 2048, 8192]
        exact = exact_lru_mrc(trace, sizes)
        raw = shards_lru_mrc(trace, sizes, rate=0.1, seed=11, adjust=False)
        adjusted = shards_lru_mrc(trace, sizes, rate=0.1, seed=11)
        raw_gap = mrc_gap(raw, exact)["max_abs_gap"]
        adj_gap = mrc_gap(adjusted, exact)["max_abs_gap"]
        assert adj_gap < raw_gap
        assert adj_gap < 0.05

    def test_estimates_exact_curve_zipf(self):
        """On skewed popularity the per-seed variance is higher (few
        sampled pages carry most traffic); averaging over seeds the
        estimator still tracks the curve."""
        trace = zipf_trace(8192, 200_000, alpha=0.9, seed=10)
        sizes = [256, 1024, 4096]
        exact = exact_lru_mrc(trace, sizes)
        estimates = [
            shards_lru_mrc(trace, sizes, rate=0.2, seed=s) for s in range(5)
        ]
        mean_estimate = np.mean(estimates, axis=0)
        assert mrc_gap(mean_estimate, exact)["max_abs_gap"] < 0.06

    def test_rate_one_is_exact(self):
        trace = zipf_trace(512, 20_000, alpha=1.0, seed=12)
        sizes = [16, 64, 256]
        assert np.allclose(
            shards_lru_mrc(trace, sizes, rate=1.0), exact_lru_mrc(trace, sizes)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shards_lru_mrc(np.array([1]), [4], rate=0.0)
        with pytest.raises(ConfigurationError):
            shards_lru_mrc(np.array([1]), [], rate=0.5)
        with pytest.raises(ConfigurationError):
            shards_lru_mrc(np.array([1]), [0], rate=0.5)


class TestMrcModule:
    def test_exact_matches_direct_simulation(self):
        trace = zipf_trace(256, 10_000, alpha=1.0, seed=13)
        sizes = [8, 32, 128]
        curve = exact_lru_mrc(trace, sizes)
        for size, rate in zip(sizes, curve.tolist()):
            assert rate == pytest.approx(LRUCache(size).run(trace).miss_rate)

    def test_policy_mrc_generic(self):
        trace = zipf_trace(256, 5_000, alpha=1.0, seed=14)
        curve = policy_mrc(lambda c: LRUCache(c), trace, [8, 64])
        assert curve[1] <= curve[0]

    def test_gap_summary(self):
        gap = mrc_gap(np.array([0.5, 0.4]), np.array([0.4, 0.4]))
        assert gap["mean_abs_gap"] == pytest.approx(0.05)
        assert gap["max_abs_gap"] == pytest.approx(0.1)
        assert gap["mean_signed_gap"] == pytest.approx(0.05)

    def test_gap_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mrc_gap(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_lru_mrc(np.empty(0, dtype=np.int64), [4])
