"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Profiles: 'default' for local/CI runs, 'thorough' via
#   pytest -p no:cacheprovider --hypothesis-profile=thorough
settings.register_profile(
    "default",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc randomness inside tests."""
    return np.random.Generator(np.random.PCG64(12345))


@pytest.fixture
def small_zipf_trace():
    """A small, deterministic Zipf trace shared by many policy tests."""
    from repro.traces.synthetic import zipf_trace

    return zipf_trace(num_pages=256, length=5_000, alpha=1.0, seed=7)


@pytest.fixture
def tiny_trace():
    """A hand-written trace with known LRU/OPT behaviour."""
    from repro.traces.base import Trace

    return Trace(np.array([1, 2, 3, 1, 2, 4, 1, 2, 3, 4], dtype=np.int64), name="tiny")
