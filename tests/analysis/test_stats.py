"""Tests for repro.analysis.stats — bootstrap CIs and run aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, summarize_runs
from repro.errors import ConfigurationError


class TestBootstrap:
    def test_point_estimate(self):
        point, lo, hi = bootstrap_ci([1.0, 2.0, 3.0], seed=1)
        assert point == pytest.approx(2.0)
        assert lo <= point <= hi

    def test_single_sample_degenerate(self):
        point, lo, hi = bootstrap_ci([5.0], seed=1)
        assert point == lo == hi == 5.0

    def test_median_statistic(self):
        point, _, _ = bootstrap_ci([1.0, 2.0, 100.0], statistic="median", seed=1)
        assert point == 2.0

    def test_interval_narrows_with_more_data(self):
        rng = np.random.Generator(np.random.PCG64(2))
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=1000)
        _, lo_s, hi_s = bootstrap_ci(small, seed=3)
        _, lo_l, hi_l = bootstrap_ci(large, seed=3)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_interval_covers_truth_mostly(self):
        rng = np.random.Generator(np.random.PCG64(4))
        covered = 0
        for trial in range(50):
            data = rng.normal(10.0, 2.0, size=40)
            _, lo, hi = bootstrap_ci(data, confidence=0.95, seed=trial)
            covered += lo <= 10.0 <= hi
        assert covered >= 40  # ~95% nominal, generous slack

    def test_reproducible(self):
        data = [1.0, 4.0, 2.0, 8.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], num_resamples=0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], statistic="mode")


class TestSummarizeRuns:
    RUNS = [{"miss_rate": 0.1, "x": 1.0}, {"miss_rate": 0.3, "x": 2.0}]

    def test_summary_fields(self):
        out = summarize_runs(self.RUNS, ["miss_rate"], seed=1)
        s = out["miss_rate"]
        assert s["mean"] == pytest.approx(0.2)
        assert s["min"] == 0.1
        assert s["max"] == 0.3
        assert s["std"] == pytest.approx(np.std([0.1, 0.3], ddof=1))
        assert s["ci_lo"] <= s["mean"] <= s["ci_hi"]

    def test_multiple_keys(self):
        out = summarize_runs(self.RUNS, ["miss_rate", "x"], seed=1)
        assert set(out) == {"miss_rate", "x"}

    def test_missing_key_raises(self):
        with pytest.raises(ConfigurationError):
            summarize_runs(self.RUNS, ["absent"])

    def test_empty_runs(self):
        with pytest.raises(ConfigurationError):
            summarize_runs([], ["a"])

    def test_single_run_zero_std(self):
        out = summarize_runs([{"a": 2.0}], ["a"], seed=1)
        assert out["a"]["std"] == 0.0
