"""Tests for repro.analysis.heat — contention metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.heat import eviction_gini, heat_timeline, hot_fraction, slot_pressure
from repro.core.assoc.d_lru import PLruCache
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace


class TestSlotPressure:
    def test_normalizes(self):
        out = slot_pressure(np.array([1, 3, 0]))
        assert out.sum() == pytest.approx(1.0)
        assert out.tolist() == pytest.approx([0.25, 0.75, 0.0])

    def test_zero_evictions(self):
        assert slot_pressure(np.zeros(3)).tolist() == [0, 0, 0]


class TestGini:
    def test_uniform_is_zero(self):
        assert eviction_gini(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        ev = np.zeros(1000)
        ev[0] = 500
        assert eviction_gini(ev) > 0.99

    def test_known_value(self):
        # two slots, all load on one: Gini = 1/2 for n=2
        assert eviction_gini(np.array([0, 10])) == pytest.approx(0.5)

    def test_scale_invariant(self):
        ev = np.array([1.0, 2.0, 3.0, 4.0])
        assert eviction_gini(ev) == pytest.approx(eviction_gini(ev * 100))

    def test_no_evictions(self):
        assert eviction_gini(np.zeros(5)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            eviction_gini(np.array([]))


class TestHotFraction:
    def test_all_on_one_slot(self):
        ev = np.zeros(100)
        ev[3] = 42
        assert hot_fraction(ev, 0.01) == 1.0

    def test_uniform(self):
        assert hot_fraction(np.ones(100), 0.1) == pytest.approx(0.1)

    def test_zero_evictions(self):
        assert hot_fraction(np.zeros(10), 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hot_fraction(np.ones(4), 0.0)
        with pytest.raises(ConfigurationError):
            hot_fraction(np.ones(4), 1.5)


class TestHeatTimeline:
    def test_windows_and_keys(self):
        trace = zipf_trace(512, 8_000, alpha=1.0, seed=1)
        out = heat_timeline(
            lambda: PLruCache(64, d=2, seed=2), trace, window=2_000
        )
        assert set(out) == {"miss_rate", "gini", "hot1"}
        assert out["miss_rate"].shape == (4,)
        assert np.all((out["gini"] >= 0) & (out["gini"] <= 1))

    def test_state_carries_across_windows(self):
        """Miss rate must drop after the first window (no reset between)."""
        trace = np.tile(np.arange(32, dtype=np.int64), 100)
        out = heat_timeline(lambda: PLruCache(64, d=2, seed=3), trace, window=800)
        assert out["miss_rate"][0] > out["miss_rate"][-1]

    def test_rejects_policies_without_counters(self):
        with pytest.raises(ConfigurationError):
            heat_timeline(lambda: LRUCache(8), np.arange(10), window=5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            heat_timeline(lambda: PLruCache(8, d=2), np.arange(10), window=0)
