"""Tests for repro.analysis.competitive — §2's competitiveness machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.competitive import (
    CompetitiveReport,
    competitive_report,
    empirical_competitive_ratio,
    opt_phases,
)
from repro.core.base import SimResult
from repro.core.fully.belady import BeladyCache
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace


def _result(hits, capacity=8):
    return SimResult(hits=np.asarray(hits, dtype=bool), policy="p", capacity=capacity)


class TestReport:
    def test_ratio(self):
        r = CompetitiveReport(alg_misses=30, ref_misses=10, n=8, beta=2, trace_length=100)
        assert r.ratio == 3.0
        assert r.excess_misses == 20
        assert r.additive_scale == pytest.approx(12.5)

    def test_zero_reference(self):
        r = CompetitiveReport(alg_misses=5, ref_misses=0, n=8, beta=2, trace_length=10)
        assert r.ratio == float("inf")
        r2 = CompetitiveReport(alg_misses=0, ref_misses=0, n=8, beta=2, trace_length=10)
        assert r2.ratio == 1.0

    def test_from_results(self):
        alg = _result([False] * 4)
        ref = _result([False, True, True, True], capacity=4)
        report = competitive_report(alg, ref, beta=2)
        assert report.alg_misses == 4
        assert report.ref_misses == 1
        assert report.n == 8

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            competitive_report(_result([True]), _result([True, False]), beta=2)


class TestEmpiricalRatio:
    def test_lru_vs_opt_sleator_tarjan_shape(self):
        """LRU at size n vs OPT at n/2 — the classic result promises a
        ratio <= 2 (+ additive slack) on any trace."""
        trace = zipf_trace(512, 40_000, alpha=0.8, seed=3)
        report = empirical_competitive_ratio(
            lambda c: LRUCache(c), lambda c: BeladyCache(c), trace, n=256, beta=2
        )
        assert report.ratio <= 2.0 + report.additive_scale / max(1, report.ref_misses) + 0.2

    def test_self_comparison_is_one(self):
        trace = zipf_trace(64, 5_000, alpha=1.0, seed=4)
        report = empirical_competitive_ratio(
            lambda c: LRUCache(c), lambda c: LRUCache(c), trace, n=32, beta=1
        )
        assert report.ratio == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_competitive_ratio(
                lambda c: LRUCache(c), lambda c: LRUCache(c), np.array([1]), n=0
            )
        with pytest.raises(ConfigurationError):
            empirical_competitive_ratio(
                lambda c: LRUCache(c), lambda c: LRUCache(c), np.array([1]), n=4, beta=0.5
            )


class TestOptPhases:
    def test_phases_cover_trace(self):
        ref = _result([False, True, False, True, False, True])
        phases = opt_phases(ref, misses_per_phase=1)
        assert phases[0].start == 0
        assert phases[-1].stop == 6
        for a, b in zip(phases, phases[1:]):
            assert a.stop == b.start

    def test_each_phase_has_expected_misses(self):
        rng = np.random.Generator(np.random.PCG64(5))
        hits = rng.random(500) < 0.7
        ref = _result(hits.tolist())
        k = 10
        phases = opt_phases(ref, misses_per_phase=k)
        miss_flags = ~ref.hits
        for phase in phases[:-1]:
            assert int(miss_flags[phase].sum()) == k
        assert int(miss_flags[phases[-1]].sum()) <= k

    def test_no_misses_single_phase(self):
        ref = _result([True, True, True])
        assert opt_phases(ref, 5) == [slice(0, 3)]

    def test_empty_trace(self):
        assert opt_phases(_result([]), 5) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            opt_phases(_result([True]), 0)
