"""Tests for repro.analysis.characterize — workload profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.characterize import (
    characterize,
    fit_zipf_exponent,
    footprint_curve,
    reuse_distance_histogram,
)
from repro.errors import ConfigurationError
from repro.traces.phases import phase_change_trace
from repro.traces.synthetic import cyclic_scan_trace, zipf_trace


class TestFootprint:
    def test_stationary_working_set_flat(self):
        trace = zipf_trace(64, 20_000, alpha=0.0, seed=1)
        curve = footprint_curve(trace, window=2_000)
        assert curve.max() <= 64
        assert curve.min() >= 60  # every window sees ~the whole set

    def test_phase_changes_visible(self):
        trace = phase_change_trace(100, 5_000, 4, overlap=0.0, seed=2)
        curve = footprint_curve(trace, window=5_000)
        assert curve.shape == (4,)
        assert np.all(curve <= 100)

    def test_scan_footprint_equals_window(self):
        trace = cyclic_scan_trace(100_000, 20_000)
        curve = footprint_curve(trace, window=5_000)
        assert np.all(curve == 5_000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            footprint_curve(np.array([1, 2]), window=0)


class TestZipfFit:
    @pytest.mark.parametrize("alpha", [0.6, 1.0, 1.4])
    def test_recovers_exponent(self, alpha):
        trace = zipf_trace(4096, 400_000, alpha=alpha, seed=3)
        alpha_hat, r2 = fit_zipf_exponent(trace)
        assert alpha_hat == pytest.approx(alpha, abs=0.15)
        assert r2 > 0.95

    def test_uniform_fits_near_zero(self):
        trace = zipf_trace(256, 100_000, alpha=0.0, seed=4)
        alpha_hat, _ = fit_zipf_exponent(trace)
        assert abs(alpha_hat) < 0.1

    def test_scan_flagged_by_r2_or_flat(self):
        trace = cyclic_scan_trace(1000, 10_000)
        alpha_hat, r2 = fit_zipf_exponent(trace)
        # every page accessed equally often: exponent ~0
        assert abs(alpha_hat) < 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_zipf_exponent(np.empty(0, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            fit_zipf_exponent(np.array([1, 2]), head_fraction=0.0)


class TestReuseHistogram:
    def test_counts_partition_rereferences(self):
        trace = zipf_trace(128, 10_000, alpha=1.0, seed=5)
        hist = reuse_distance_histogram(trace)
        total = int(hist["counts"].sum()) + int(hist["cold"][0])
        assert total == 10_000

    def test_cold_only_scan(self):
        hist = reuse_distance_histogram(np.arange(100))
        assert hist["cold"][0] == 100
        assert hist["counts"].sum() == 0

    def test_custom_edges(self):
        trace = np.array([1, 1, 2, 1])
        hist = reuse_distance_histogram(trace, bin_edges=[0, 1, 4])
        # distances: 1@1->0, 1@3->1; both re-references binned
        assert hist["counts"].sum() == 2


class TestCharacterize:
    def test_zipf_profile(self):
        trace = zipf_trace(1024, 60_000, alpha=1.0, seed=6)
        report = characterize(trace)
        assert report["length"] == 60_000
        assert report["zipf_alpha_hat"] == pytest.approx(1.0, abs=0.2)
        assert 0 < report["reuse_fraction"] <= 1
        assert report["footprint_cv"] < 0.3  # stationary

    def test_phase_workload_high_footprint_cv_or_jumps(self):
        trace = phase_change_trace(200, 4_000, 6, overlap=0.0, seed=7)
        report = characterize(trace, windows=12)
        assert report["distinct"] >= 6 * 100
        assert report["footprint_max"] <= 200

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            characterize(np.empty(0, dtype=np.int64))
