"""Tests for the Theorem-4 proof tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.prooftrace import trace_theorem4_accounting
from repro.core.assoc.heatsink import HeatSinkLRU
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace


@pytest.fixture(scope="module")
def acct():
    trace = zipf_trace(4096, 40_000, alpha=0.9, seed=3)
    return trace_theorem4_accounting(trace, nominal_size=512, epsilon=0.3, seed=4)


class TestStructure:
    def test_phases_partition_trace(self, acct):
        assert acct.phases[0].start == 0
        assert acct.phases[-1].stop == acct.trace_length
        for a, b in zip(acct.phases, acct.phases[1:]):
            assert a.stop == b.start

    def test_phase_lru_miss_budget(self, acct):
        expected = max(1, int(round(0.3 * 512)))
        for phase in acct.phases[:-1]:
            assert phase.lru_misses == expected
        assert acct.phases[-1].lru_misses <= expected

    def test_totals_match_phase_sums(self, acct):
        assert acct.lru_total_misses == sum(p.lru_misses for p in acct.phases)
        assert acct.hs_total_misses == sum(p.hs_misses for p in acct.phases)
        assert acct.c10 == sum(p.c10 for p in acct.phases)
        assert acct.c00 == sum(p.c00 for p in acct.phases)

    def test_miss_split_consistent(self, acct):
        for phase in acct.phases:
            assert phase.hs_misses == phase.hs_misses_on_hot + phase.hs_misses_on_cool
            assert phase.hs_misses == phase.c00 + phase.c01
            assert phase.sink_routed_misses <= phase.hs_misses

    def test_working_set_bound(self, acct):
        """|A ∪ B| <= (1-2eps)n + eps*n = (1-eps)n — the Lemma 11 input."""
        bound = (1 - 0.3) * 512 + 1
        for phase in acct.phases:
            assert phase.working_pages <= bound


class TestLemmaShapes:
    def test_lemma11_hot_pages_minority(self, acct):
        for phase in acct.phases:
            assert phase.hot_page_fraction < 0.5

    def test_lemma10_cool_sink_entrants_bounded(self, acct):
        eps2n = 0.09 * 512
        for phase in acct.phases:
            assert phase.distinct_cool_to_sink <= 8 * eps2n

    def test_theorem_inequality(self, acct):
        assert acct.theorem_inequality_satisfied()

    def test_bonus_ledger(self, acct):
        assert acct.bonus_points == acct.c10 + acct.sink_routed_misses


class TestApi:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            trace_theorem4_accounting(np.array([1, 2]), nominal_size=16, epsilon=0.5)
        with pytest.raises(ConfigurationError):
            trace_theorem4_accounting(
                np.empty(0, dtype=np.int64), nominal_size=16, epsilon=0.2
            )

    def test_custom_heatsink_instance(self):
        trace = zipf_trace(512, 5_000, alpha=1.0, seed=5)
        hs = HeatSinkLRU.from_epsilon(128, 0.3, seed=6)
        acct = trace_theorem4_accounting(
            trace, nominal_size=128, epsilon=0.3, heatsink=hs
        )
        assert acct.hs_total_misses > 0

    def test_recorder_detached_after_use(self):
        trace = zipf_trace(256, 2_000, alpha=1.0, seed=7)
        hs = HeatSinkLRU.from_epsilon(64, 0.3, seed=8)
        trace_theorem4_accounting(trace, nominal_size=64, epsilon=0.3, heatsink=hs)
        assert hs._recorder is None

    def test_deterministic(self):
        trace = zipf_trace(512, 5_000, alpha=1.0, seed=9)
        a = trace_theorem4_accounting(trace, nominal_size=128, epsilon=0.2, seed=1)
        b = trace_theorem4_accounting(trace, nominal_size=128, epsilon=0.2, seed=1)
        assert a.hs_total_misses == b.hs_total_misses
        assert a.c10 == b.c10
