"""Tests for repro.analysis.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import miss_rate_curve, steady_state_miss_rate, warmup_split
from repro.core.base import SimResult
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace


def _result(hits):
    return SimResult(hits=np.asarray(hits, dtype=bool), policy="p", capacity=4)


class TestWarmupSplit:
    def test_split_point(self):
        r = _result([False, False, True, True])
        head, tail = warmup_split(r, 0.5)
        assert head == 1.0
        assert tail == 0.0

    def test_zero_warmup(self):
        r = _result([False, True])
        head, tail = warmup_split(r, 0.0)
        assert np.isnan(head)
        assert tail == 0.5

    def test_empty(self):
        head, tail = warmup_split(_result([]), 0.25)
        assert np.isnan(head) and np.isnan(tail)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            warmup_split(_result([True]), 1.0)

    def test_steady_state_wrapper(self):
        r = _result([False, False, True, True])
        assert steady_state_miss_rate(r, 0.5) == 0.0


class TestMissRateCurve:
    def test_monotone_for_lru(self):
        trace = zipf_trace(256, 20_000, alpha=1.0, seed=1)
        sizes = [8, 16, 32, 64, 128]
        rates = miss_rate_curve(lambda c: LRUCache(c), trace, sizes)
        assert rates.shape == (5,)
        assert np.all(np.diff(rates) <= 0)

    def test_empty_sizes(self):
        with pytest.raises(ConfigurationError):
            miss_rate_curve(lambda c: LRUCache(c), np.array([1, 2]), [])

    def test_fresh_instance_per_size(self):
        calls = []

        def factory(c):
            calls.append(c)
            return LRUCache(c)

        miss_rate_curve(factory, np.array([1, 2, 1]), [1, 2])
        assert calls == [1, 2]
