"""Unit tests for RANDOM, MARKING, and SIEVE semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fully.lru import LRUCache
from repro.core.fully.marking import MarkingCache
from repro.core.fully.random_evict import RandomEvictCache
from repro.core.fully.sieve import SieveCache
from repro.traces.synthetic import sequential_scan_trace, zipf_trace


class TestRandomEvict:
    def test_deterministic_under_seed(self):
        rng = np.random.Generator(np.random.PCG64(1))
        pages = rng.integers(0, 30, size=1000, dtype=np.int64)
        a = RandomEvictCache(8, seed=5).run(pages)
        b = RandomEvictCache(8, seed=5).run(pages)
        assert np.array_equal(a.hits, b.hits)

    def test_seeds_differ(self):
        rng = np.random.Generator(np.random.PCG64(1))
        pages = rng.integers(0, 30, size=1000, dtype=np.int64)
        a = RandomEvictCache(8, seed=5).run(pages)
        b = RandomEvictCache(8, seed=6).run(pages)
        assert not np.array_equal(a.hits, b.hits)

    def test_eviction_position_uniform(self):
        """Original residents should all be flushed quickly: the chance a
        specific page survives t uniform evictions among 4 residents decays
        like (3/4)^t, so after 100 insertions none of the originals remain."""
        cache = RandomEvictCache(4, seed=7)
        for p in range(4):
            cache.access(p)
        for fresh in range(100, 200):
            cache.access(fresh)
        assert cache.contents().isdisjoint({0, 1, 2, 3})

    def test_every_eviction_removes_exactly_one(self):
        cache = RandomEvictCache(4, seed=9)
        for p in range(4):
            cache.access(p)
        for fresh in range(100, 150):
            before = set(cache.contents())
            cache.access(fresh)
            after = set(cache.contents())
            assert len(before - after) == 1
            assert after - before == {fresh}

    def test_swap_remove_integrity(self):
        cache = RandomEvictCache(3, seed=2)
        for p in range(100):
            cache.access(p % 7)
            assert len(cache) == len(cache.contents()) <= 3


class TestMarking:
    def test_marked_pages_survive_phase(self):
        m = MarkingCache(3, seed=1)
        m.access(1)
        m.access(2)
        m.access(3)
        # all marked; a miss starts a new phase but the missing page is marked
        m.access(4)
        assert 4 in m.contents()
        assert m.phase == 1

    def test_never_evicts_marked_within_phase(self):
        """Marked pages are safe until the phase resets (a phase reset
        unmarks everything, after which one unmarked page may be evicted)."""
        m = MarkingCache(4, seed=3)
        rng = np.random.Generator(np.random.PCG64(9))
        for p in rng.integers(0, 12, size=2000).tolist():
            before_marked = set(m._marked)
            phase_before = m.phase
            m.access(int(p))
            if m.phase == phase_before:
                assert before_marked <= m.contents()

    def test_phase_counting_on_cycle(self):
        m = MarkingCache(2, seed=5)
        for p in [1, 2, 3, 4, 1, 2]:
            m.access(p)
        assert m.phase >= 2

    def test_competitive_on_cycle_vs_lru(self):
        """On the (k+1)-page cycle, LRU misses 100%; MARKING must do
        strictly better in expectation (its guarantee is O(log k))."""
        pages = np.tile(np.arange(9), 40)
        lru_m = LRUCache(8).run(pages).num_misses
        mark_m = MarkingCache(8, seed=4).run(pages).num_misses
        assert lru_m == pages.size
        assert mark_m < 0.8 * pages.size


class TestSieve:
    def test_visited_pages_survive_sweep(self):
        s = SieveCache(3)
        s.access(1)
        s.access(2)
        s.access(3)
        s.access(1)  # mark 1 visited
        s.access(4)  # hand starts at tail (1): visited -> skip, evict 2
        assert 1 in s.contents()
        assert 2 not in s.contents()

    def test_evicts_tail_when_unvisited(self):
        s = SieveCache(2)
        s.access(1)
        s.access(2)
        s.access(3)
        assert s.contents() == {2, 3}

    def test_hand_persistence(self):
        """SIEVE's hand does not reset to the tail after each eviction."""
        s = SieveCache(3)
        for p in (1, 2, 3):
            s.access(p)
        for p in (1, 2, 3):
            s.access(p)  # all visited
        s.access(4)  # sweeps from tail clearing bits; evicts 1 (tail)
        s.access(5)  # hand is mid-list now; next unvisited is 2
        assert 3 in s.contents()

    def test_capacity_one(self):
        s = SieveCache(1)
        s.access(1)
        s.access(1)
        s.access(2)
        assert s.contents() == {2}

    def test_quality_on_zipf(self):
        """SIEVE should be at least competitive with LRU on Zipf traffic."""
        t = zipf_trace(512, 30_000, alpha=1.0, seed=6)
        sieve_m = SieveCache(128).run(t).num_misses
        lru_m = LRUCache(128).run(t).num_misses
        assert sieve_m <= 1.05 * lru_m

    def test_list_integrity_bulk(self):
        s = SieveCache(8)
        rng = np.random.Generator(np.random.PCG64(11))
        for p in rng.integers(0, 40, size=5000).tolist():
            s.access(int(p))
            assert len(s) <= 8
        # structural walk: list length equals dict size
        count, node = 0, s._head
        seen = set()
        while node is not None:
            assert id(node) not in seen  # no cycles
            seen.add(id(node))
            count += 1
            node = node.next
        assert count == len(s)
