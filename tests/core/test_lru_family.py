"""Unit tests for LRU, MRU, FIFO, and CLOCK semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fully.clock import ClockCache
from repro.core.fully.fifo import FIFOCache
from repro.core.fully.lru import LRUCache, MRUCache


class TestLRU:
    def test_evicts_least_recent(self):
        lru = LRUCache(2)
        lru.access(1)
        lru.access(2)
        lru.access(1)  # refresh 1; victim should now be 2
        lru.access(3)
        assert lru.contents() == {1, 3}

    def test_hit_does_not_evict(self):
        lru = LRUCache(2)
        lru.access(1)
        lru.access(2)
        assert lru.access(1) is True
        assert lru.contents() == {1, 2}

    def test_recency_order(self):
        lru = LRUCache(3)
        for p in (1, 2, 3, 1):
            lru.access(p)
        assert lru.recency_order() == [2, 3, 1]

    def test_victim_reporting(self):
        lru = LRUCache(2)
        assert lru.victim() is None
        lru.access(1)
        assert lru.victim() is None  # not full yet
        lru.access(2)
        assert lru.victim() == 1

    def test_known_miss_count_on_cycle(self):
        # cyclic scan of n+1 pages through size-n LRU: every access misses
        pages = np.tile(np.arange(4), 10)
        result = LRUCache(3).run(pages)
        assert result.num_misses == result.num_accesses

    def test_inclusion_property(self):
        """LRU(k) contents are always a subset of LRU(k+1) contents."""
        rng = np.random.Generator(np.random.PCG64(8))
        pages = rng.integers(0, 20, size=500).tolist()
        small, big = LRUCache(4), LRUCache(5)
        for p in pages:
            small.access(p)
            big.access(p)
            assert small.contents() <= big.contents()

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=150), st.integers(1, 8))
    @settings(max_examples=30)
    def test_property_monotone_in_capacity(self, pages, capacity):
        """Bigger LRU caches never miss more (stack property)."""
        arr = np.asarray(pages, dtype=np.int64)
        m_small = LRUCache(capacity).run(arr).num_misses
        m_big = LRUCache(capacity + 1).run(arr).num_misses
        assert m_big <= m_small


class TestMRU:
    def test_evicts_most_recent(self):
        mru = MRUCache(2)
        mru.access(1)
        mru.access(2)
        mru.access(3)  # evicts 2 (most recently used)
        assert mru.contents() == {1, 3}

    def test_optimal_on_cyclic_scan(self):
        """MRU beats LRU decisively on a cyclic scan slightly larger than
        the cache (LRU gets 0 hits; MRU retains most of the loop)."""
        pages = np.tile(np.arange(9), 30)
        lru_misses = LRUCache(8).run(pages).num_misses
        mru_misses = MRUCache(8).run(pages).num_misses
        assert lru_misses == pages.size
        assert mru_misses < 0.3 * pages.size


class TestFIFO:
    def test_evicts_first_in(self):
        fifo = FIFOCache(2)
        fifo.access(1)
        fifo.access(2)
        fifo.access(1)  # hit: does NOT refresh insertion order
        fifo.access(3)  # evicts 1 (inserted first)
        assert fifo.contents() == {2, 3}

    def test_differs_from_lru(self):
        pages = np.array([1, 2, 1, 3, 1, 4, 1, 5])
        fifo = FIFOCache(2).run(pages)
        lru = LRUCache(2).run(pages)
        # page 1 is constantly refreshed: LRU keeps it, FIFO cycles it out
        assert lru.num_misses < fifo.num_misses

    def test_beladys_anomaly_possible(self):
        """The classic Belady anomaly instance: FIFO with a BIGGER cache
        misses MORE. (Guards against accidentally implementing LRU.)"""
        pages = np.array([1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5])
        m3 = FIFOCache(3).run(pages).num_misses
        m4 = FIFOCache(4).run(pages).num_misses
        assert m3 == 9 and m4 == 10


class TestClock:
    def test_second_chance(self):
        clock = ClockCache(2)
        clock.access(1)
        clock.access(2)
        clock.access(1)  # sets 1's reference bit
        clock.access(3)  # hand skips 1 (clearing its bit), evicts 2
        assert clock.contents() == {1, 3}

    def test_degenerates_to_fifo_without_hits(self):
        pages = np.arange(100, dtype=np.int64)  # no re-references
        clock = ClockCache(8).run(pages)
        fifo = FIFOCache(8).run(pages)
        assert np.array_equal(clock.hits, fifo.hits)

    def test_approximates_lru_quality(self, small_zipf_trace):
        """On a Zipf trace CLOCK should land within ~15% of LRU misses."""
        lru = LRUCache(64).run(small_zipf_trace).num_misses
        clk = ClockCache(64).run(small_zipf_trace).num_misses
        assert abs(clk - lru) <= 0.15 * lru

    def test_hand_wraps(self):
        clock = ClockCache(3)
        for p in range(10):
            clock.access(p)
            clock.access(p)  # set every reference bit
        # all bits set; next miss must still find a victim (full rotation)
        clock.access(100)
        assert 100 in clock.contents()
        assert len(clock) == 3
