"""Unit tests for Count-Min sketch, SLRU, and W-TinyLFU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fully.lru import LRUCache
from repro.core.fully.sketch import CountMinSketch
from repro.core.fully.slru import SLRUCache
from repro.core.fully.tinylfu import TinyLFUCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(64, aging_window=10**9, seed=1)
        truth: dict[int, int] = {}
        rng = np.random.Generator(np.random.PCG64(2))
        for key in rng.integers(0, 50, size=500).tolist():
            sketch.increment(int(key))
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= min(count, sketch.cap)

    def test_saturates_at_cap(self):
        sketch = CountMinSketch(64, cap=15, aging_window=10**9, seed=3)
        for _ in range(100):
            sketch.increment(7)
        assert sketch.estimate(7) == 15

    def test_aging_halves(self):
        sketch = CountMinSketch(64, cap=100, aging_window=10, seed=4)
        for _ in range(9):
            sketch.increment(5)
        assert sketch.estimate(5) == 9
        sketch.increment(5)  # 10th increment triggers aging: (9+1) >> 1
        assert sketch.estimate(5) == 5
        assert sketch.agings == 1

    def test_estimate_of_unseen_is_small(self):
        sketch = CountMinSketch(1024, aging_window=10**9, seed=5)
        for key in range(100):
            sketch.increment(key)
        assert sketch.estimate(10**9) <= 2  # collision noise only

    def test_reset(self):
        sketch = CountMinSketch(32, seed=6)
        sketch.increment(1)
        sketch.reset()
        assert sketch.estimate(1) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(8, depth=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(8, cap=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(8, aging_window=0)


class TestSLRU:
    def test_promotion_on_rereference(self):
        c = SLRUCache(10, protected_fraction=0.8)
        c.access(1)
        assert 1 in c._probation
        c.access(1)
        assert 1 in c._protected

    def test_scan_evicts_probation_only(self):
        c = SLRUCache(10, protected_fraction=0.5)
        for p in (1, 2):
            c.access(p)
            c.access(p)  # protect 1, 2
        for p in range(100, 150):  # scan
            c.access(p)
        assert 1 in c.contents() and 2 in c.contents()

    def test_protected_overflow_demotes_not_evicts(self):
        c = SLRUCache(4, protected_fraction=0.5)  # protected capacity 2
        for p in (1, 2, 3):
            c.access(p)
            c.access(p)  # promote all three -> one must demote
        assert len(c._protected) <= 2
        assert {1, 2, 3} <= c.contents()  # demoted page stays resident

    def test_victim_reporting(self):
        c = SLRUCache(2, protected_fraction=0.5)
        assert c.victim() is None
        c.access(1)
        c.access(2)
        assert c.victim() == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLRUCache(8, protected_fraction=1.0)

    def test_contains(self):
        c = SLRUCache(4)
        c.access(1)
        assert 1 in c
        assert 2 not in c


class TestTinyLFU:
    def test_scan_immunity(self):
        """A one-shot scan must not displace the warm working set."""
        c = TinyLFUCache(64, window_fraction=0.05, seed=1)
        hot = list(range(32))
        for _ in range(10):
            for p in hot:
                c.access(p)
        for p in range(1000, 1400):  # long one-shot scan
            c.access(p)
        hits = sum(c.access(p) for p in hot)
        assert hits >= 30

    def test_admission_gate_rejects_cold_candidates(self):
        c = TinyLFUCache(64, window_fraction=0.05, seed=2)
        for _ in range(5):
            for p in range(32):
                c.access(p)
        for p in range(2000, 2200):
            c.access(p)
        result_extra = c._instrumentation()
        assert result_extra["rejected"] > result_extra["admitted"] * 0.5

    def test_beats_lru_on_zipf(self):
        trace = zipf_trace(8192, 80_000, alpha=1.0, seed=3)
        tiny = TinyLFUCache(512, seed=4).run(trace).miss_rate
        lru = LRUCache(512).run(trace).miss_rate
        assert tiny < lru

    def test_window_plus_main_partition(self):
        c = TinyLFUCache(100, window_fraction=0.1, seed=5)
        assert c.window_capacity == 10
        assert c.main_capacity == 90
        rng = np.random.Generator(np.random.PCG64(6))
        for p in rng.integers(0, 400, size=3000).tolist():
            c.access(int(p))
            assert len(c) <= 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TinyLFUCache(64, window_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TinyLFUCache(64, window_fraction=1.0)

    def test_reset(self):
        c = TinyLFUCache(32, seed=7)
        for p in range(100):
            c.access(p)
        c.reset()
        assert len(c) == 0
