"""Registry introspection behind `repro-experiment policies`."""

from __future__ import annotations

import pytest

from repro.core.registry import (
    available_policies,
    describe_policies,
    make_policy,
    policy_signature,
    register_policy,
)
from repro.errors import ConfigurationError


class TestPolicySignature:
    def test_class_backed_signature(self):
        sig = policy_signature("heatsink")
        assert sig.startswith("HeatSinkLRU(")
        assert "capacity" in sig and "sink_prob" in sig
        assert "self" not in sig

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            policy_signature("definitely-not-registered")

    def test_factory_fallback_without_cls(self):
        from repro.core.fully import LRUCache

        register_policy("sig-test", lambda capacity, pad=3: LRUCache(capacity))
        try:
            sig = policy_signature("sig-test")
            assert sig.startswith("factory(")
            assert "pad" in sig
            assert make_policy("sig-test", 4).capacity == 4
        finally:
            from repro.core import registry

            registry._REGISTRY.pop("sig-test")
            registry._POLICY_CLASSES.pop("sig-test")

    def test_describe_covers_every_registered_name(self):
        described = dict(describe_policies())
        assert sorted(described) == available_policies()
        assert all(described.values())
