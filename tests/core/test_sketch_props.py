"""Hypothesis property & stateful tests: CM-sketch and SLRU promotion.

The sketch's one guarantee the whole TinyLFU/hybrid family leans on is
**one-sided error**: ``estimate(k)`` never under-counts the (aged,
saturated) true frequency, under plain *and* conservative update, through
any interleaving of increments and halving events. The stateful machines
below drive both structures against exact reference models; everything is
seeded and bounded to stay inside the chaos-suite runtime budget.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.fully.sketch import CountMinSketch
from repro.core.fully.slru import SLRUCache

keys = st.integers(min_value=0, max_value=200)
streams = st.lists(keys, min_size=1, max_size=400)


class TestOneSidedError:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams, conservative=st.booleans(), seed=st.integers(0, 7))
    def test_estimate_never_undercounts_without_aging(self, stream, conservative, seed):
        sketch = CountMinSketch(
            32, depth=3, cap=10**9, aging_window=10**9, conservative=conservative, seed=seed
        )
        truth: dict[int, int] = {}
        for key in stream:
            sketch.increment(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @settings(max_examples=40, deadline=None)
    @given(stream=streams, conservative=st.booleans(), seed=st.integers(0, 7))
    def test_estimate_never_undercounts_with_aging_and_cap(self, stream, conservative, seed):
        """With saturation and halving, the floor is the identically aged,
        identically saturated true count."""
        sketch = CountMinSketch(
            16, depth=3, cap=8, aging_window=25, conservative=conservative, seed=seed
        )
        floor: dict[int, int] = {}
        agings = 0
        for key in stream:
            sketch.increment(key)
            floor[key] = min(floor.get(key, 0) + 1, sketch.cap)
            if sketch.agings > agings:  # mirror the halving event exactly
                agings = sketch.agings
                floor = {k: v >> 1 for k, v in floor.items()}
            assert sketch.estimate(key) >= floor[key]

    @settings(max_examples=30, deadline=None)
    @given(stream=streams, seed=st.integers(0, 7))
    def test_conservative_never_exceeds_plain(self, stream, seed):
        """Conservative update is a pointwise refinement: same hash rows,
        same stream ⇒ estimates bounded by the plain sketch's."""
        plain = CountMinSketch(16, depth=3, aging_window=10**9, conservative=False, seed=seed)
        cons = CountMinSketch(16, depth=3, aging_window=10**9, conservative=True, seed=seed)
        for key in stream:
            plain.increment(key)
            cons.increment(key)
        for key in set(stream):
            assert cons.estimate(key) <= plain.estimate(key)


class TestAging:
    @settings(max_examples=30, deadline=None)
    @given(stream=st.lists(keys, min_size=10, max_size=120), seed=st.integers(0, 7))
    def test_aging_halves_every_counter(self, stream, seed):
        sketch = CountMinSketch(16, depth=3, cap=10**9, aging_window=10**9, seed=seed)
        for key in stream:
            sketch.increment(key)
        before = [row[:] for row in sketch._table]
        sketch._age()
        for row_before, row_after in zip(before, sketch._table):
            assert row_after == [c >> 1 for c in row_before]
        assert sketch.agings == 1

    def test_aging_triggers_exactly_on_window(self):
        sketch = CountMinSketch(8, aging_window=50, seed=1)
        for i in range(49):
            sketch.increment(i % 5)
        assert sketch.agings == 0
        sketch.increment(0)
        assert sketch.agings == 1


class TestErrorBounds:
    def test_width_bounds_mean_overestimate(self):
        """On a random stream the mean overestimate must be within a few
        multiples of the textbook N/width noise bound (seeded, so exact
        reproducibility — this is a regression pin, not a flaky tail test)."""
        rng = np.random.Generator(np.random.PCG64(9))
        stream = rng.integers(0, 500, size=4000).tolist()
        for conservative in (False, True):
            sketch = CountMinSketch(
                128, depth=4, cap=10**9, aging_window=10**9,
                conservative=conservative, seed=3,
            )
            truth: dict[int, int] = {}
            for key in stream:
                sketch.increment(int(key))
                truth[key] = truth.get(key, 0) + 1
            errors = [sketch.estimate(k) - c for k, c in truth.items()]
            assert min(errors) >= 0
            assert np.mean(errors) <= 3 * len(stream) / 128

    def test_deeper_sketch_is_no_worse(self):
        rng = np.random.Generator(np.random.PCG64(11))
        stream = rng.integers(0, 300, size=2000).tolist()
        means = []
        for depth in (1, 4):
            sketch = CountMinSketch(
                64, depth=depth, cap=10**9, aging_window=10**9, seed=5
            )
            truth: dict[int, int] = {}
            for key in stream:
                sketch.increment(int(key))
                truth[key] = truth.get(key, 0) + 1
            means.append(np.mean([sketch.estimate(k) - c for k, c in truth.items()]))
        assert means[1] <= means[0]


class SketchMachine(RuleBasedStateMachine):
    """Stateful: arbitrary increment interleavings vs the exact floor model."""

    def __init__(self):
        super().__init__()
        self.sketch = CountMinSketch(8, depth=2, cap=12, aging_window=30, seed=2)
        self.floor: dict[int, int] = {}
        self.agings_seen = 0

    @rule(key=st.integers(0, 40))
    def increment(self, key):
        self.sketch.increment(key)
        self.floor[key] = min(self.floor.get(key, 0) + 1, self.sketch.cap)
        if self.sketch.agings > self.agings_seen:
            self.agings_seen = self.sketch.agings
            self.floor = {k: v >> 1 for k, v in self.floor.items()}

    @rule()
    def reset(self):
        self.sketch.reset()
        self.floor.clear()
        self.agings_seen = 0

    @invariant()
    def estimates_dominate_floor(self):
        for key, count in self.floor.items():
            assert self.sketch.estimate(key) >= count


SketchMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestSketchStateful = SketchMachine.TestCase


class SLRUMachine(RuleBasedStateMachine):
    """Stateful: SLRU vs an exact two-segment reference model.

    The model mirrors the promotion/demotion rules with plain lists;
    every step compares hit flags, both segment contents *in order*, and
    the occupancy bounds.
    """

    CAPACITY = 6
    PROTECTED = 3

    def __init__(self):
        super().__init__()
        self.slru = SLRUCache(self.CAPACITY, protected_fraction=0.5)
        self.probation: list[int] = []  # LRU .. MRU
        self.protected: list[int] = []

    def _model_access(self, page: int) -> bool:
        if page in self.protected:
            self.protected.remove(page)
            self.protected.append(page)
            return True
        if page in self.probation:
            self.probation.remove(page)
            self.protected.append(page)
            while len(self.protected) > self.PROTECTED:
                self.probation.append(self.protected.pop(0))
            return True
        if len(self.probation) + len(self.protected) >= self.CAPACITY:
            if self.probation:
                self.probation.pop(0)
            else:
                self.protected.pop(0)
        self.probation.append(page)
        return False

    @rule(page=st.integers(0, 12))
    def access(self, page):
        assert self.slru.access(page) == self._model_access(page)

    @rule()
    def reset(self):
        self.slru.reset()
        self.probation.clear()
        self.protected.clear()

    @invariant()
    def segments_match_model_exactly(self):
        assert list(self.slru._probation) == self.probation
        assert list(self.slru._protected) == self.protected
        assert len(self.slru) <= self.CAPACITY
        assert len(self.slru._protected) <= self.PROTECTED
        # segments are disjoint and victim reporting agrees with the model
        assert not (set(self.probation) & set(self.protected))
        if len(self.slru) >= self.CAPACITY:
            expected = self.probation[0] if self.probation else self.protected[0]
            assert self.slru.victim() == expected


SLRUMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
TestSLRUStateful = SLRUMachine.TestCase
