"""Registry conformance suite: the shared contract, checked once for all.

Every *registered* online policy — including ones added after this file
was written — is auto-discovered and pushed through the same wall:

- seed determinism: same seed ⇒ identical hit sequences and final state;
- ``reset=False`` continuation: running a trace in two halves on one
  instance equals one full run on a fresh instance with the same seed;
- ``PolicyStore.verify()`` invariants after serving a mixed op stream;
- capacity-1 and capacity-≥-working-set edge cases;
- the demand-paging reference check (hit iff resident, occupancy bound).

A future policy registered via :func:`repro.register_policy` gets all of
this for free just by existing.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.registry import available_policies, make_policy
from repro.errors import ConfigurationError
from repro.service.store import PolicyStore
from tests.helpers import (
    all_online_policy_factories,
    make_seeded_policy,
    reference_policy_check,
)

CAPACITY = 8
NAMES = sorted(all_online_policy_factories(CAPACITY))


def _trace(seed: int, *, pages: int = 24, length: int = 300) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, pages, size=length, dtype=np.int64)


def test_discovery_includes_the_adaptive_zoo():
    """The suite must actually be covering the policies this PR ships."""
    assert {"slru", "arc", "lrfu", "tinylfu", "sketch-heatsink"} <= set(NAMES)


@pytest.mark.parametrize("name", NAMES)
class TestPolicyContract:
    def test_seed_determinism(self, name):
        pages = _trace(1)
        a = make_seeded_policy(name, CAPACITY, seed=5).run(pages, fast=False)
        b = make_seeded_policy(name, CAPACITY, seed=5).run(pages, fast=False)
        assert np.array_equal(a.hits, b.hits)
        assert (
            make_seeded_policy(name, CAPACITY, seed=5).run(pages, fast=False).num_misses
            == a.num_misses
        )

    def test_final_state_determinism(self, name):
        pages = _trace(2)
        a = make_seeded_policy(name, CAPACITY, seed=3)
        b = make_seeded_policy(name, CAPACITY, seed=3)
        a.run(pages, fast=False)
        b.run(pages, fast=False)
        assert a.contents() == b.contents()

    def test_reset_false_continuation(self, name):
        """Split run ≡ full run: no hidden cross-run state beyond reset()."""
        pages = _trace(3, length=400)
        full = make_seeded_policy(name, CAPACITY, seed=7).run(pages, fast=False)
        split = make_seeded_policy(name, CAPACITY, seed=7)
        first = split.run(pages[:150], fast=False)
        second = split.run(pages[150:], reset=False, fast=False)
        assert np.array_equal(full.hits, np.concatenate([first.hits, second.hits]))

    def test_store_verify_invariants(self, name):
        """Serving a mixed GET/PUT/DEL stream keeps accounting consistent."""
        rng = np.random.Generator(np.random.PCG64(4))
        keys = rng.integers(0, 24, size=200).tolist()
        ops = rng.integers(0, 3, size=200).tolist()

        async def scenario():
            store = PolicyStore(make_seeded_policy(name, CAPACITY, seed=1))
            for key, op in zip(keys, ops):
                if op == 0:
                    await store.get(int(key))
                elif op == 1:
                    await store.put(int(key), b"v")
                else:
                    await store.delete(int(key))
            return await store.verify()

        assert asyncio.run(scenario()) == []

    def test_capacity_one_works_or_rejects(self, name):
        """Capacity 1 is either served correctly or rejected loudly."""
        try:
            policy = make_seeded_policy(name, 1, seed=2)
        except ConfigurationError:
            return  # a documented sizing constraint (e.g. heatsink's sink>=2)
        reference_policy_check(policy, _trace(5, pages=4, length=60))
        policy.reset()
        assert policy.access(9) is False
        assert policy.access(9) is True  # the one resident page hits

    def test_capacity_exceeding_working_set(self, name):
        """With capacity ≥ distinct pages, residency converges and never
        exceeds the working set (fully-assoc policies stop missing;
        low-associativity ones may still conflict, but must stay bounded)."""
        pages = _trace(6, pages=5, length=120)
        policy = make_seeded_policy(name, CAPACITY, seed=3)
        result = policy.run(pages, fast=False)
        assert result.num_misses >= np.unique(pages).size  # cold misses at least
        assert len(policy) <= min(policy.capacity, np.unique(pages).size)
        assert policy.contents() <= set(np.unique(pages).tolist())

    def test_reference_invariants_on_adversarial_mix(self, name):
        """The step-by-step demand-paging contract on a scan-heavy mix."""
        scan = np.concatenate(
            [_trace(7, pages=6, length=60), np.arange(100, 140), _trace(8, pages=6, length=60)]
        ).astype(np.int64)
        reference_policy_check(make_seeded_policy(name, CAPACITY, seed=4), scan)


class TestDiscoveryMechanics:
    def test_every_registered_online_policy_is_in_the_suite(self):
        covered = set(NAMES)
        for name in available_policies():
            try:
                policy = make_policy(name, CAPACITY, **_probe_kwargs(name))
            except ConfigurationError:
                continue
            if not policy.is_offline:
                assert name in covered, f"{name} escaped the conformance suite"


def _probe_kwargs(name: str) -> dict:
    from tests.helpers import _extra_kwargs

    return _extra_kwargs(name, CAPACITY)
