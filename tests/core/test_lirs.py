"""Unit tests for LIRS semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fully.lirs import LIRSCache
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import cyclic_scan_trace, zipf_trace


class TestConstruction:
    def test_partition(self):
        c = LIRSCache(100, hir_fraction=0.1)
        assert c.hir_capacity == 10
        assert c.lir_capacity == 90

    def test_small_capacity(self):
        c = LIRSCache(2)
        assert c.hir_capacity >= 1
        assert c.lir_capacity >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LIRSCache(8, hir_fraction=0.0)
        with pytest.raises(ConfigurationError):
            LIRSCache(8, hir_fraction=1.0)
        with pytest.raises(ConfigurationError):
            LIRSCache(8, ghost_factor=0.5)


class TestSemantics:
    def test_cold_start_fills_lir_first(self):
        c = LIRSCache(10, hir_fraction=0.2)  # lir capacity 8
        for p in range(8):
            c.access(p)
        assert c.lir_pages() == frozenset(range(8))

    def test_hir_page_with_short_reuse_promotes(self):
        c = LIRSCache(10, hir_fraction=0.2)
        for p in range(8):
            c.access(p)  # LIR = 0..7
        c.access(100)  # HIR resident, on stack
        c.access(100)  # re-reference while on stack -> promotes to LIR
        assert 100 in c.lir_pages()

    def test_promotion_demotes_bottom_lir(self):
        c = LIRSCache(10, hir_fraction=0.2)
        for p in range(8):
            c.access(p)
        c.access(100)
        c.access(100)
        # LIR capacity is 8: promoting 100 must demote the coldest (0)
        assert 0 not in c.lir_pages()
        assert 0 in c.contents()  # demoted to resident HIR, not evicted

    def test_one_shot_scan_does_not_displace_lir(self):
        c = LIRSCache(10, hir_fraction=0.2)
        for _ in range(2):
            for p in range(8):
                c.access(p)
        for p in range(1000, 1100):  # long one-shot scan
            c.access(p)
        assert c.lir_pages() == frozenset(range(8))
        assert all(c.access(p) for p in range(8))

    def test_ghost_hit_enters_as_lir(self):
        c = LIRSCache(10, hir_fraction=0.2)
        for p in range(8):
            c.access(p)
        c.access(50)  # HIR resident (cache now 9/10)
        c.access(51)  # HIR resident (cache full)
        c.access(52)  # miss at capacity: evicts Q-front 50 -> ghost
        assert 50 not in c.contents()
        c.access(50)  # ghost hit -> re-enters as LIR
        assert 50 in c.lir_pages()

    def test_ghost_bound(self):
        c = LIRSCache(8, hir_fraction=0.25, ghost_factor=2.0)
        for p in range(10_000):
            c.access(p)
        assert len(c._stack) <= 2 * 8 + 4  # bound plus in-flight slack


class TestQuality:
    def test_scan_resistance_vs_lru(self):
        trace = cyclic_scan_trace(600, 60_000)
        lirs_rate = LIRSCache(512).run(trace).miss_rate
        lru_rate = LRUCache(512).run(trace).miss_rate
        assert lru_rate == 1.0
        assert lirs_rate < 0.5

    def test_competitive_with_lru_on_zipf(self):
        trace = zipf_trace(2048, 60_000, alpha=1.0, seed=3)
        lirs_rate = LIRSCache(512).run(trace).miss_rate
        lru_rate = LRUCache(512).run(trace).miss_rate
        assert lirs_rate <= 1.05 * lru_rate

    def test_reset(self):
        c = LIRSCache(8)
        for p in range(50):
            c.access(p)
        c.reset()
        assert len(c) == 0
        assert c.lir_pages() == frozenset()
