"""Cross-policy property tests: demand-paging invariants for every policy.

These are the library's strongest correctness net: every registered
online policy is driven step-by-step against a reference residency model
on hypothesis-generated traces, and offline Belady is checked against the
same bulk contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import CachePolicy
from repro.core.fully.belady import BeladyCache
from repro.core.registry import available_policies, make_policy
from tests.helpers import all_online_policy_factories, reference_policy_check

CAPACITY = 8
FACTORIES = all_online_policy_factories(CAPACITY)

traces_strategy = st.lists(st.integers(0, 24), min_size=1, max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestOnlinePolicyInvariants:
    @given(pages=traces_strategy)
    @settings(max_examples=25)
    def test_demand_paging_invariants(self, name, pages):
        reference_policy_check(FACTORIES[name](), pages)

    def test_reset_empties_cache(self, name):
        policy = FACTORIES[name]()
        for page in range(CAPACITY * 2):
            policy.access(page)
        policy.reset()
        assert len(policy.contents()) == 0
        assert len(policy) == 0

    def test_run_equals_stepping(self, name):
        rng = np.random.Generator(np.random.PCG64(5))
        pages = rng.integers(0, 30, size=300, dtype=np.int64)
        bulk = FACTORIES[name]().run(pages)
        stepped = FACTORIES[name]()
        stepped.reset()
        manual = np.array([stepped.access(int(p)) for p in pages.tolist()])
        assert np.array_equal(bulk.hits, manual), name

    def test_repeated_access_hits(self, name):
        policy = FACTORIES[name]()
        policy.access(1)
        assert policy.access(1) is True

    def test_miss_count_bounds(self, name):
        """misses >= distinct pages (cold) and <= total accesses."""
        rng = np.random.Generator(np.random.PCG64(6))
        pages = rng.integers(0, 50, size=500, dtype=np.int64)
        result = FACTORIES[name]().run(pages)
        distinct = int(np.unique(pages).size)
        assert distinct <= result.num_misses + 0 or distinct <= result.num_misses
        assert result.num_misses >= min(distinct, 1)
        assert result.num_misses <= result.num_accesses

    def test_small_working_set_all_hits_after_warmup(self, name):
        """A working set that fits must stop missing eventually (policies
        may need several passes to stabilize, e.g. 2-RANDOM)."""
        if name == "heatsink":
            pytest.skip("heatsink's helper kwargs give it a tiny bin region")
        policy = FACTORIES[name]()
        ws = list(range(3))  # 3 pages in a cache of 8
        for _ in range(40):
            for p in ws:
                policy.access(p)
        misses = sum(not policy.access(p) for _ in range(5) for p in ws)
        assert misses == 0, f"{name} still missing on a tiny stable working set"


class TestBeladyContract:
    @given(pages=traces_strategy)
    @settings(max_examples=25)
    def test_belady_beats_every_online_policy(self, pages):
        opt_misses = BeladyCache(4).run(pages).num_misses
        for name, factory in FACTORIES.items():
            policy = make_policy(name, 4, **_small_kwargs(name))
            assert opt_misses <= policy.run(pages).num_misses, name

    def test_offline_flag(self):
        assert BeladyCache(4).is_offline
        for name in sorted(FACTORIES):
            assert not FACTORIES[name]().is_offline


def _small_kwargs(name: str) -> dict:
    from tests.helpers import _extra_kwargs

    kwargs = _extra_kwargs(name, 4)
    if name == "victim":
        kwargs["victim_size"] = 1
    if name == "heatsink":
        kwargs.update(bin_size=2, sink_size=2, sink_prob=0.1)
    if name in {"set-assoc", "skew-assoc"}:
        kwargs["d"] = 2  # defaults exceed a capacity-4 cache
    return kwargs


class TestRegistry:
    def test_all_expected_policies_registered(self):
        names = set(available_policies())
        expected = {
            "lru", "mru", "fifo", "clock", "lfu", "random", "marking",
            "sieve", "arc", "2q", "lru-k", "opt",
            "d-lru", "2-lru", "d-fifo", "d-random", "2-random",
            "set-assoc", "skew-assoc", "victim", "cuckoo", "heatsink",
        }
        assert expected <= names

    def test_unknown_policy_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown policy"):
            make_policy("definitely-not-a-policy", 8)

    def test_duplicate_registration_rejected(self):
        from repro.core.registry import register_policy
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            register_policy("lru", lambda c: None)

    def test_overwrite_allowed(self):
        from repro.core.registry import _REGISTRY, register_policy

        original = _REGISTRY["lru"]
        try:
            register_policy("lru", original, overwrite=True)
        finally:
            _REGISTRY["lru"] = original

    def test_capacity_validation(self):
        from repro.errors import ConfigurationError

        for name in ("lru", "fifo", "opt"):
            with pytest.raises(ConfigurationError):
                make_policy(name, 0)
