"""Tests for Belady's MIN (offline OPT) — optimality is certified against
an exhaustive brute-force optimum on small instances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fully.belady import BeladyCache, belady_miss_count, compute_next_use
from repro.core.fully.lru import LRUCache
from repro.errors import SimulationError
from tests.helpers import brute_force_min_misses


class TestNextUse:
    def test_known_sequence(self):
        pages = np.array([1, 2, 1, 3, 2, 1])
        assert compute_next_use(pages).tolist() == [2, 4, 5, 6, 6, 6]

    def test_all_distinct(self):
        pages = np.arange(5)
        assert compute_next_use(pages).tolist() == [5] * 5

    def test_empty(self):
        assert compute_next_use(np.empty(0, dtype=np.int64)).size == 0

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=80))
    def test_property_matches_bruteforce(self, pages):
        arr = np.asarray(pages, dtype=np.int64)
        nxt = compute_next_use(arr)
        for i, p in enumerate(pages):
            expected = len(pages)
            for j in range(i + 1, len(pages)):
                if pages[j] == p:
                    expected = j
                    break
            assert nxt[i] == expected


class TestBeladyOptimality:
    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=12),
        st.integers(1, 3),
    )
    @settings(max_examples=60)
    def test_matches_exhaustive_optimum(self, pages, capacity):
        fast = belady_miss_count(np.asarray(pages, dtype=np.int64), capacity)
        assert fast == brute_force_min_misses(pages, capacity)

    def test_classic_example(self):
        # textbook example: OPT on 1,2,3,4,1,2,5,1,2,3,4,5 with capacity 3
        pages = np.array([1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5])
        assert belady_miss_count(pages, 3) == 7

    def test_never_worse_than_lru(self, small_zipf_trace):
        for capacity in (16, 64, 128):
            assert belady_miss_count(small_zipf_trace, capacity) <= (
                LRUCache(capacity).run(small_zipf_trace).num_misses
            )

    def test_perfect_when_everything_fits(self):
        pages = np.tile(np.arange(8), 10)
        assert belady_miss_count(pages, 8) == 8  # cold misses only


class TestBeladyMechanics:
    def test_access_raises(self):
        with pytest.raises(SimulationError):
            BeladyCache(4).access(1)

    def test_hits_array_shape(self):
        result = BeladyCache(2).run(np.array([1, 2, 1]))
        assert result.hits.tolist() == [False, False, True]

    def test_contents_after_run(self):
        cache = BeladyCache(2)
        cache.run(np.array([1, 2, 3, 2]))
        assert cache.contents() <= {1, 2, 3}
        assert len(cache) <= 2

    def test_reset_between_runs(self):
        cache = BeladyCache(2)
        first = cache.run(np.array([1, 2, 1])).num_misses
        second = cache.run(np.array([1, 2, 1])).num_misses
        assert first == second

    def test_run_without_reset_continues_state(self):
        cache = BeladyCache(2)
        cache.run(np.array([1, 2]))
        cont = cache.run(np.array([1]), reset=False)
        assert cont.num_misses == 0  # 1 still resident

    def test_empty_trace(self):
        result = BeladyCache(4).run(np.empty(0, dtype=np.int64))
        assert result.num_accesses == 0
        assert np.isnan(result.miss_rate)
