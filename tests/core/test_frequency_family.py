"""Unit tests for LFU, LRU-K, 2Q, and ARC semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fully.arc import ARCCache
from repro.core.fully.lfu import LFUCache
from repro.core.fully.lru import LRUCache
from repro.core.fully.lru_k import LRUKCache
from repro.core.fully.two_q import TwoQCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import sequential_scan_trace, zipf_trace


class TestLFU:
    def test_evicts_least_frequent(self):
        lfu = LFUCache(2)
        lfu.access(1)
        lfu.access(1)
        lfu.access(2)
        lfu.access(3)  # 2 has freq 1, 1 has freq 2 -> evict 2
        assert lfu.contents() == {1, 3}

    def test_lru_tiebreak(self):
        lfu = LFUCache(2)
        lfu.access(1)
        lfu.access(2)  # both freq 1; 1 is older
        lfu.access(3)
        assert lfu.contents() == {2, 3}

    def test_frequency_tracking(self):
        lfu = LFUCache(4)
        for _ in range(5):
            lfu.access(7)
        assert lfu.frequency_of(7) == 5
        assert lfu.frequency_of(99) is None

    def test_frequency_resets_on_eviction(self):
        lfu = LFUCache(1)
        for _ in range(10):
            lfu.access(1)
        lfu.access(2)  # evicts 1 despite high frequency (capacity 1)
        lfu.access(1)  # re-enters with frequency 1
        assert lfu.frequency_of(1) == 1

    def test_scan_resistance_vs_lru(self):
        """Hot pages with high counts survive a one-shot scan under LFU."""
        hot = np.tile(np.arange(8), 50)
        scan = np.arange(100, 200)
        probe = np.arange(8)
        trace = np.concatenate([hot, scan, probe])
        lfu_probe_misses = (~LFUCache(16).run(trace).hits[-8:]).sum()
        lru_probe_misses = (~LRUCache(16).run(trace).hits[-8:]).sum()
        assert lfu_probe_misses < lru_probe_misses

    def test_bucket_list_integrity_bulk(self):
        rng = np.random.Generator(np.random.PCG64(4))
        lfu = LFUCache(16)
        for p in rng.integers(0, 64, size=3000).tolist():
            lfu.access(int(p))
            assert len(lfu) <= 16


class TestLRUK:
    def test_k1_matches_lru(self):
        rng = np.random.Generator(np.random.PCG64(2))
        pages = rng.integers(0, 30, size=800, dtype=np.int64)
        assert np.array_equal(
            LRUKCache(8, k=1).run(pages).hits, LRUCache(8).run(pages).hits
        )

    def test_prefers_evicting_single_reference_pages(self):
        c = LRUKCache(3, k=2)
        c.access(1)
        c.access(1)  # 1 has two references
        c.access(2)
        c.access(3)
        c.access(4)  # evict among {2,3} (single-ref) before 1
        assert 1 in c.contents()

    def test_oldest_kth_reference_evicted(self):
        # clocks: 1@{1,2}, 2@{3,4}, then 1@5 -> 1's K-th most recent is 2,
        # 2's is 3; LRU-2 evicts the page with the OLDEST K-th reference (1)
        c = LRUKCache(2, k=2)
        c.access(1)
        c.access(1)
        c.access(2)
        c.access(2)
        c.access(1)
        c.access(3)
        assert c.contents() == {2, 3}

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            LRUKCache(4, k=0)

    def test_name_includes_k(self):
        assert LRUKCache(4, k=2).name == "LRU-2"


class TestTwoQ:
    def test_second_reference_promotes(self):
        q = TwoQCache(8)
        q.access(1)  # into A1in
        # push 1 out of A1in into the ghost A1out
        for p in range(2, 8):
            q.access(p)
        assert 1 not in q.contents() or True  # may be resident or ghosted
        was_resident = 1 in q.contents()
        q.access(1)
        if not was_resident:
            # a ghost hit must bring the page into the Am (hot) list
            assert 1 in q.contents()

    def test_scan_does_not_pollute_hot_list(self):
        q = TwoQCache(16)
        # establish hot pages: 4 hot + 16 fillers overflow the cache by
        # exactly 4, reclaiming the 4 hot pages into the ghost queue; the
        # re-reference then ghost-hits them into the hot Am list
        for p in range(4):
            q.access(p)
        for p in range(100, 116):
            q.access(p)
        for p in range(4):
            q.access(p)
        assert all(p in q._am for p in range(4))
        # a long one-shot scan only ever occupies the probation queue
        for p in range(1000, 1100):
            q.access(p)
        hot_hits = sum(q.access(p) for p in range(4))
        assert hot_hits == 4

    def test_capacity_respected(self):
        q = TwoQCache(4)
        for p in range(100):
            q.access(p)
            assert len(q) <= 4

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            TwoQCache(8, kin_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TwoQCache(8, kout_fraction=0.0)

    def test_capacity_one(self):
        q = TwoQCache(1)
        assert q.access(1) is False
        assert q.access(1) is True
        q.access(2)
        assert len(q) == 1


class TestARC:
    def test_t1_hit_promotes_to_t2(self):
        arc = ARCCache(4)
        arc.access(1)  # into t1
        arc.access(1)  # promoted to t2
        assert arc._t2 is not None and 1 in arc._t2

    def test_ghost_hit_adapts_target(self):
        # B1 only receives pages while |T1| < c (FAST'03 Case IV), so first
        # promote one page into T2, then overflow T1
        arc = ARCCache(4)
        arc.access(0)
        arc.access(0)  # 0 -> t2
        for p in range(1, 6):
            arc.access(p)  # t1 overflows -> LRU of t1 ghosts into b1
        assert len(arc._b1) > 0
        ghost = next(iter(arc._b1))
        before = arc.target_t1
        arc.access(ghost)
        assert arc.target_t1 >= before  # b1 hit grows the recency target
        assert ghost in arc.contents()

    def test_capacity_and_ghost_bounds(self):
        arc = ARCCache(6)
        rng = np.random.Generator(np.random.PCG64(3))
        for p in rng.integers(0, 40, size=4000).tolist():
            arc.access(int(p))
            assert len(arc) <= 6
            l1 = len(arc._t1) + len(arc._b1)
            l2 = len(arc._t2) + len(arc._b2)
            assert l1 <= 6
            assert l1 + l2 <= 12

    def test_beats_lru_on_mixed_scan_workload(self):
        """ARC's raison d'être: loops+scans where LRU thrashes."""
        hot = np.tile(np.arange(32), 60)
        scans = np.arange(1000, 3000)
        rng = np.random.Generator(np.random.PCG64(5))
        mix = np.concatenate([hot[:960], scans[:1000], hot[960:], scans[1000:]])
        arc_m = ARCCache(64).run(mix).num_misses
        lru_m = LRUCache(64).run(mix).num_misses
        assert arc_m <= lru_m

    def test_close_to_lru_on_zipf(self):
        t = zipf_trace(512, 30_000, alpha=1.0, seed=3)
        arc_m = ARCCache(128).run(t).num_misses
        lru_m = LRUCache(128).run(t).num_misses
        assert arc_m <= 1.1 * lru_m
