"""LRFU: differential tests against the CRF definition and its λ-limits.

Three independent anchors pin the implementation:

- the incremental O(1) score update is replayed against a slow
  obviously-correct model that recomputes every CRF from the page's full
  access history at every step (Horner evaluation of the definition, so
  the floating-point operation order is identical — exact equality);
- ``λ = 1`` must reproduce LRU *exactly* (Lee et al.); ``λ = 0`` is LFU
  with LRU tie-breaking, checked against a count model;
- hypothesis drives random traces through the victim-choice comparison.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fully.lrfu import LRFUCache
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError

traces = st.lists(st.integers(0, 20), min_size=1, max_size=150)


class SlowLRFUModel:
    """Recompute-from-history LRFU: obviously correct, O(n·T) per access."""

    def __init__(self, capacity: int, lam: float):
        self.capacity = capacity
        self.weight = 2.0 ** (-lam)
        self.clock = 0
        self.history: dict[int, list[int]] = {}  # resident page -> access times
        self.recency: list[int] = []  # LRU .. MRU among residents

    def _crf(self, page: int, now: int) -> float:
        # newest-first Horner form: 1 + w^(d1)·(1 + w^(d2)·(...)) — the
        # same operation order the incremental update performs
        times = self.history[page]
        crf = 0.0
        prev = None
        for t in times:  # oldest .. newest
            crf = 1.0 + crf * self.weight ** (t - prev) if prev is not None else 1.0
            prev = t
        return crf * self.weight ** (now - prev)

    def access(self, page: int) -> bool:
        self.clock += 1
        now = self.clock
        if page in self.history:
            self.history[page].append(now)
            self.recency.remove(page)
            self.recency.append(page)
            return True
        if len(self.history) >= self.capacity:
            best = min(
                self.recency, key=lambda p: (self._crf(p, now), self.recency.index(p))
            )
            del self.history[best]
            self.recency.remove(best)
        self.history[page] = [now]
        self.recency.append(page)
        return False


@pytest.mark.parametrize("lam", [0.0, 0.1, 0.5, 1.0])
def test_matches_slow_model(lam):
    rng = np.random.Generator(np.random.PCG64(3))
    pages = rng.integers(0, 25, size=600).tolist()
    fast = LRFUCache(8, lam=lam)
    slow = SlowLRFUModel(8, lam)
    for i, page in enumerate(pages):
        assert fast.access(page) == slow.access(page), (lam, i)
        assert fast.contents() == frozenset(slow.history), (lam, i)


@settings(max_examples=40, deadline=None)
@given(trace=traces, lam=st.sampled_from([0.0, 0.25, 1.0]))
def test_matches_slow_model_hypothesis(trace, lam):
    fast = LRFUCache(4, lam=lam)
    slow = SlowLRFUModel(4, lam)
    for page in trace:
        assert fast.access(page) == slow.access(page)
    assert fast.contents() == frozenset(slow.history)


def test_lambda_one_is_exactly_lru():
    rng = np.random.Generator(np.random.PCG64(5))
    pages = rng.integers(0, 40, size=2000, dtype=np.int64)
    lrfu = LRFUCache(16, lam=1.0).run(pages)
    lru = LRUCache(16).run(pages)
    assert np.array_equal(lrfu.hits, lru.hits)


def test_lambda_zero_is_lfu_with_lru_ties():
    """λ=0: CRF is the exact access count; victim = min count, then LRU."""
    rng = np.random.Generator(np.random.PCG64(6))
    pages = rng.integers(0, 30, size=800).tolist()
    policy = LRFUCache(8, lam=0.0)
    counts: dict[int, int] = {}
    recency: list[int] = []
    for page in pages:
        if page in recency:
            assert policy.access(page) is True
            counts[page] += 1
            recency.remove(page)
            recency.append(page)
            continue
        if len(recency) >= 8:
            victim = min(recency, key=lambda p: (counts[p], recency.index(p)))
            recency.remove(victim)
            del counts[victim]
        assert policy.access(page) is False
        counts[page] = counts.get(page, 0) + 1
        recency.append(page)
        assert policy.contents() == frozenset(recency)


def test_decay_spectrum_is_monotone_in_behaviour():
    """On a frequency-skewed trace, small λ (frequency-leaning) must beat
    or match large λ (recency-leaning) — the knob points the right way."""
    rng = np.random.Generator(np.random.PCG64(8))
    hot = rng.integers(0, 8, size=4000)  # heavy reuse
    scan = np.arange(1000, 1000 + 4000)  # one-shot pollution
    mix = np.empty(8000, dtype=np.int64)
    mix[0::2] = hot
    mix[1::2] = scan
    misses = {
        lam: LRFUCache(16, lam=lam).run(mix).num_misses for lam in (0.01, 1.0)
    }
    assert misses[0.01] <= misses[1.0]


def test_crf_diagnostic_and_validation():
    policy = LRFUCache(4, lam=0.5)
    policy.access(1)
    assert policy.crf(1) == 1.0
    policy.access(2)
    assert policy.crf(1) == pytest.approx(2.0 ** -0.5)
    with pytest.raises(KeyError):
        policy.crf(99)
    with pytest.raises(ConfigurationError):
        LRFUCache(4, lam=1.5)
    with pytest.raises(ConfigurationError):
        LRFUCache(4, lam=-0.1)


def test_name_carries_lambda():
    assert "0.25" in LRFUCache(4, lam=0.25).name
