"""Tests for repro.core.base — SimResult and the CachePolicy contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SimResult
from repro.errors import ConfigurationError


def _result(hits: list[bool]) -> SimResult:
    return SimResult(hits=np.asarray(hits, dtype=bool), policy="test", capacity=4)


class TestSimResult:
    def test_counts(self):
        r = _result([True, False, True, False, False])
        assert r.num_accesses == 5
        assert r.num_hits == 2
        assert r.num_misses == 3
        assert r.miss_rate == pytest.approx(0.6)
        assert r.hit_rate == pytest.approx(0.4)

    def test_empty(self):
        r = _result([])
        assert r.num_accesses == 0
        assert np.isnan(r.miss_rate)
        assert np.isnan(r.hit_rate)

    def test_num_hits_cached_at_construction(self):
        r = _result([True, False, True])
        assert r._num_hits == 2
        # the property serves the cache, never re-summing the array:
        # poisoning the cache must be visible through the property
        object.__setattr__(r, "_num_hits", 99)
        assert r.num_hits == 99

    def test_hits_immutable(self):
        r = _result([True])
        with pytest.raises(ValueError):
            r.hits[0] = False

    def test_miss_indices(self):
        r = _result([True, False, True, False])
        assert r.miss_indices().tolist() == [1, 3]

    def test_windowed_miss_rate_exact_windows(self):
        r = _result([False, False, True, True])
        assert r.windowed_miss_rate(2).tolist() == [1.0, 0.0]

    def test_windowed_miss_rate_partial_tail(self):
        r = _result([False, True, False])
        rates = r.windowed_miss_rate(2)
        assert rates.tolist() == [0.5, 1.0]  # tail window has 1 access, a miss

    def test_windowed_invalid(self):
        with pytest.raises(ConfigurationError):
            _result([True]).windowed_miss_rate(0)

    def test_extra_copied(self):
        extra = {"a": 1}
        r = SimResult(hits=np.ones(1, dtype=bool), policy="p", capacity=1, extra=extra)
        extra["a"] = 2
        assert r.extra["a"] == 1
