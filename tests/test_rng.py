"""Tests for repro.rng — deterministic seed management."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import (
    as_seed_sequence,
    derive_seed,
    interleave_seeds,
    make_rng,
    seed_iterator,
    spawn_seeds,
)


class TestAsSeedSequence:
    def test_int_is_reproducible(self):
        a = as_seed_sequence(42).generate_state(4)
        b = as_seed_sequence(42).generate_state(4)
        assert np.array_equal(a, b)

    def test_distinct_ints_differ(self):
        a = as_seed_sequence(1).generate_state(4)
        b = as_seed_sequence(2).generate_state(4)
        assert not np.array_equal(a, b)

    def test_none_gives_fresh_entropy(self):
        a = as_seed_sequence(None).generate_state(4)
        b = as_seed_sequence(None).generate_state(4)
        assert not np.array_equal(a, b)

    def test_seedsequence_passthrough(self):
        ss = np.random.SeedSequence(7)
        assert as_seed_sequence(ss) is ss

    def test_generator_accepted(self):
        gen = make_rng(3)
        ss = as_seed_sequence(gen)
        assert isinstance(ss, np.random.SeedSequence)


class TestMakeRng:
    def test_reproducible_streams(self):
        assert make_rng(5).random(10).tolist() == make_rng(5).random(10).tolist()

    def test_generator_passthrough(self):
        gen = make_rng(1)
        assert make_rng(gen) is gen


class TestSpawnSeeds:
    def test_count_and_independence(self):
        seeds = spawn_seeds(0, 8)
        assert len(seeds) == 8
        states = [tuple(s.generate_state(2).tolist()) for s in seeds]
        assert len(set(states)) == 8

    def test_reproducible(self):
        a = [s.generate_state(1)[0] for s in spawn_seeds(9, 4)]
        b = [s.generate_state(1)[0] for s in spawn_seeds(9, 4)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "x", 3) == derive_seed(1, "x", 3)

    def test_key_sensitivity(self):
        base = derive_seed(1, "x", 3)
        assert derive_seed(1, "x", 4) != base
        assert derive_seed(1, "y", 3) != base
        assert derive_seed(2, "x", 3) != base

    def test_string_keys_do_not_depend_on_hash_seed(self):
        # FNV folding, not builtin hash(): value must be a fixed constant
        assert derive_seed(0, "stable") == derive_seed(0, "stable")

    def test_returns_63_bit_nonnegative(self):
        for key in range(50):
            value = derive_seed(123, key)
            assert 0 <= value < 2**63

    @given(st.integers(0, 2**32), st.integers(0, 100))
    def test_property_stability(self, seed, key):
        assert derive_seed(seed, key) == derive_seed(seed, key)


class TestSeedIterator:
    def test_yields_distinct(self):
        it = seed_iterator(3)
        states = [tuple(next(it).generate_state(1).tolist()) for _ in range(40)]
        assert len(set(states)) == 40


class TestInterleaveSeeds:
    def test_order_sensitive(self):
        a = interleave_seeds([1, 2]).generate_state(2)
        b = interleave_seeds([2, 1]).generate_state(2)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = interleave_seeds([1, 2, 3]).generate_state(2)
        b = interleave_seeds([1, 2, 3]).generate_state(2)
        assert np.array_equal(a, b)
