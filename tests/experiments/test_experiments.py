"""Smoke + directional tests for every registered experiment.

Each experiment runs at ``smoke`` scale and we assert the *shape* of its
theorem's claim — these are the statements EXPERIMENTS.md reports at
larger scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    available_experiments,
    get_experiment,
    run_experiment,
)

# module-level cache: smoke runs are cheap but not free, and several tests
# inspect the same table
_CACHE: dict[str, object] = {}


def smoke(experiment_id: str):
    if experiment_id not in _CACHE:
        _CACHE[experiment_id] = run_experiment(experiment_id, "smoke", seed=0)
    return _CACHE[experiment_id]


class TestRegistry:
    def test_all_ids_present(self):
        assert set(available_experiments()) == {
            "T2-LOWERBOUND",
            "T2-SEMIUNIFORM",
            "T3-TWORANDOM",
            "T4-HEATSINK",
            "L5-ORIENT",
            "L6-COMPONENTS",
            "HEAT-DISSIPATION",
            "ASSOC-SWEEP",
            "ABLATION",
            "SCALING",
            "INDEXING",
            "REARRANGE",
            "T4-ACCOUNTING",
        }

    def test_case_insensitive_lookup(self):
        assert get_experiment("t4-heatsink") is get_experiment("T4-HEATSINK")

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("NOPE")

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            run_experiment("T2-LOWERBOUND", "galactic")


@pytest.mark.parametrize("experiment_id", sorted(available_experiments()))
def test_smoke_produces_rows(experiment_id):
    table = smoke(experiment_id)
    assert len(table) > 0
    assert all(row.get("experiment") == experiment_id for row in table)


class TestT2Directional:
    def test_plru_melts_while_opt_is_cold(self):
        table = smoke("T2-LOWERBOUND")
        for row in table:
            # persistent per-round misses: the melt never heals
            assert row["late_misses_per_round"] > 5
            # OPT's post-populate misses are exactly the cold misses on A∪B
            assert row["opt_misses_post_t0"] == row["opt_cold_misses_expected"]

    def test_ratio_grows_with_rounds(self):
        table = smoke("T2-LOWERBOUND")
        for row in table:
            assert row["ratio_at_K20"] > row["ratio_at_K10"]


class TestSemiUniformDirectional:
    def test_every_distribution_melts(self):
        table = smoke("T2-SEMIUNIFORM")
        for row in table:
            assert row["late_misses_per_round"] > 5, row["distribution"]

    def test_covers_semi_and_non_semi_uniform(self):
        flags = {row["semi_uniform"] for row in smoke("T2-SEMIUNIFORM")}
        assert flags == {True, False}


class TestT3Directional:
    def test_two_random_heals_two_lru_does_not(self):
        table = smoke("T3-TWORANDOM")
        adv = [r for r in table if r["workload"].startswith("adversarial")]
        assert adv
        for row in adv:
            assert row["late_misses_per_round_2random"] < row["late_misses_per_round_2lru"]

    def test_bounded_ratios_on_benign_workloads(self):
        table = smoke("T3-TWORANDOM")
        for row in table:
            if not row["workload"].startswith("adversarial"):
                assert row["ratio_2random_vs_opt"] < 3.0


class TestT4Directional:
    def test_theorem_bound_holds(self):
        """HEAT-SINK at (1+eps)n beats (1+eps) * LRU at (1-2eps)n."""
        table = smoke("T4-HEATSINK")
        for row in table:
            assert row["ratio_vs_lru_small"] <= row["theorem_budget"], row

    def test_tracks_same_size_lru_on_zipf(self):
        table = smoke("T4-HEATSINK")
        zipf_rows = [r for r in table if r["workload"].startswith("zipf")]
        assert zipf_rows
        for row in zipf_rows:
            assert row["ratio_vs_lru_same"] < 1.2

    def test_sink_share_tracks_probability(self):
        for row in smoke("T4-HEATSINK"):
            assert abs(row["sink_miss_share"] - row["sink_prob"]) < 0.05


class TestL5Directional:
    def test_orientable_in_lemma_regime(self):
        for row in smoke("L5-ORIENT"):
            if row["in_lemma_regime"]:
                assert row["pr_orientable"] >= 0.9
            elif row["beta"] <= 1.6:
                assert row["pr_orientable"] <= 0.3


class TestL6Directional:
    def test_lemma_load_within_bound(self):
        for row in smoke("L6-COMPONENTS"):
            if row["load"].startswith("lemma"):
                assert row["pr_component_ge_i"] <= row["lemma6_bound"] * 1.5

    def test_control_load_violates_bound(self):
        violations = [
            row for row in smoke("L6-COMPONENTS")
            if row["load"].startswith("control") and not row["within_bound"]
        ]
        assert violations  # heavier load must break the lemma-load bound


class TestHeatDissipationDirectional:
    def test_two_random_cools(self):
        table = smoke("HEAT-DISSIPATION")
        timeline = [r for r in table if r["kind"] == "timeline"]
        rnd = sorted(
            (r for r in timeline if r["policy"] == "2-RANDOM"), key=lambda r: r["window"]
        )
        lru = sorted(
            (r for r in timeline if r["policy"] == "2-LRU"), key=lambda r: r["window"]
        )
        # final-window miss rate: 2-RANDOM below 2-LRU
        assert rnd[-1]["miss_rate"] < lru[-1]["miss_rate"]

    def test_miss_tail_shapes(self):
        table = smoke("HEAT-DISSIPATION")
        tails = {("2-LRU",): {}, ("2-RANDOM",): {}}
        for r in table:
            if r["kind"] == "miss_tail":
                tails[(r["policy"],)][r["i"]] = r["pr_misses_gt_i"]
        # 2-LRU has a heavier far tail (perpetual missers) relative to its
        # own bulk: its tail flattens while 2-RANDOM's keeps decaying
        lru_tail = tails[("2-LRU",)]
        rnd_tail = tails[("2-RANDOM",)]
        i_max = max(lru_tail)
        assert lru_tail[i_max] > 0
        assert rnd_tail[2] < rnd_tail[1]  # decaying


class TestAssocSweepDirectional:
    def test_direct_mapped_is_worst_family_member(self):
        table = smoke("ASSOC-SWEEP")
        for workload, group in table.group_by("workload").items():
            dlru = {r["d"]: r["steady_miss_rate"] for r in group if r["design"] == "d-LRU"}
            assert dlru[1] >= dlru[4]

    def test_converges_toward_lru(self):
        table = smoke("ASSOC-SWEEP")
        for workload, group in table.group_by("workload").items():
            rows = {r["d"]: r["vs_full_lru"] for r in group if r["design"] == "d-LRU"}
            assert rows[4] < 1.3


class TestAblationDirectional:
    def test_sink_rescues_saturated_bins(self):
        table = smoke("ABLATION")
        sat = table.where(lambda r: r["workload"] == "saturated")
        baseline = next(r for r in sat if r["knob"] == "baseline")
        no_sink = next(r for r in sat if r["variant"].startswith("p=0"))
        assert baseline["misses_post_warm"] < 0.2 * no_sink["misses_post_warm"]

    def test_rows_cover_all_knobs(self):
        knobs = {r["knob"] for r in smoke("ABLATION")}
        assert knobs == {"baseline", "bin_size", "sink_prob", "sink_size", "sink_policy"}
