"""Tests for repro.viz — terminal visualizations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viz import bar_chart, heat_strip, histogram, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_nan_renders_space(self):
        assert sparkline([0.0, float("nan"), 1.0])[1] == " "

    def test_pinned_scale(self):
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert line in "▃▄▅"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart({"a": 1.0, "bb": 0.5}, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart({"x": 1.0, "long-label": 1.0})
        starts = [line.index("|") for line in chart.splitlines()]
        assert len(set(starts)) == 1

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0})
        assert "█" not in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({"a": 1.0}, width=0)


class TestHeatStrip:
    def test_width(self):
        assert len(heat_strip(np.ones(256), buckets=32)) == 32

    def test_fewer_values_than_buckets(self):
        assert len(heat_strip([1.0, 2.0], buckets=10)) == 2

    def test_hot_region_visible(self):
        values = np.zeros(100)
        values[40:50] = 10.0
        strip = heat_strip(values, buckets=10)
        assert strip[4] == "█"
        assert strip[0] == " "

    def test_pinned_scale(self):
        cool = heat_strip([1.0], buckets=1, hi=10.0)
        assert cool in " ░"

    def test_all_zero(self):
        assert set(heat_strip(np.zeros(10), buckets=5)) == {" "}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            heat_strip([], buckets=4)
        with pytest.raises(ConfigurationError):
            heat_strip([1.0], buckets=0)


class TestHistogram:
    def test_bin_count(self):
        hist = histogram(np.arange(100), bins=5)
        assert len(hist.splitlines()) == 5

    def test_counts_sum(self):
        hist = histogram(np.arange(100), bins=4, width=20)
        counts = [int(line.rsplit("|", 1)[1]) for line in hist.splitlines()]
        assert sum(counts) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            histogram([1.0], bins=0)
