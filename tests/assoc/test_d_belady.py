"""Tests for d-BELADY — the offline greedy low-associativity baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assoc.d_belady import DBeladyCache
from repro.core.assoc.d_lru import PLruCache
from repro.core.assoc.hashdist import ExplicitHashes
from repro.core.fully.belady import BeladyCache
from repro.errors import SimulationError


class TestMechanics:
    def test_offline_flag_and_access_raises(self):
        cache = DBeladyCache(8, d=2, seed=1)
        assert cache.is_offline
        with pytest.raises(SimulationError):
            cache.access(1)

    def test_evicts_furthest_next_use(self):
        dist = ExplicitHashes(2, {1: [0, 0], 2: [1, 1], 3: [0, 1]})
        cache = DBeladyCache(2, dist=dist)
        # after 1,2: slot0=1, slot1=2. Access 3: future has 2 again, not 1
        trace = np.array([1, 2, 3, 2, 2])
        result = cache.run(trace)
        # greedy evicts page 1 (never used again), so both later 2s hit
        assert result.hits.tolist() == [False, False, False, True, True]

    def test_prefers_empty_slot(self):
        dist = ExplicitHashes(3, {1: [0, 1], 2: [1, 2]})
        cache = DBeladyCache(3, dist=dist)
        result = cache.run(np.array([1, 2, 1, 2]))
        assert result.num_misses == 2  # no conflict: slot 2 was free

    def test_repeated_runs_reset(self):
        cache = DBeladyCache(8, d=2, seed=2)
        trace = np.arange(30, dtype=np.int64) % 12
        a = cache.run(trace).num_misses
        b = cache.run(trace).num_misses
        assert a == b


class TestBaselineOrdering:
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=150), st.integers(0, 50))
    @settings(max_examples=30)
    def test_never_below_full_belady(self, pages, seed):
        """Fully-associative OPT lower-bounds any d-associative schedule."""
        arr = np.asarray(pages, dtype=np.int64)
        d_misses = DBeladyCache(8, d=2, seed=seed).run(arr).num_misses
        full_misses = BeladyCache(8).run(arr).num_misses
        assert full_misses <= d_misses

    def test_usually_beats_online_d_lru(self):
        """With the same hashes, seeing the future should pay on average
        (not guaranteed per-trace: greedy d-Belady is not optimal)."""
        rng = np.random.Generator(np.random.PCG64(7))
        wins = ties = losses = 0
        for seed in range(15):
            pages = rng.integers(0, 80, size=2500, dtype=np.int64)
            offline = DBeladyCache(32, d=2, seed=seed).run(pages).num_misses
            online = PLruCache(32, d=2, seed=seed).run(pages).num_misses
            if offline < online:
                wins += 1
            elif offline == online:
                ties += 1
            else:
                losses += 1
        assert wins > losses

    def test_full_hash_set_matches_belady(self):
        """d = n with all-slot hashes makes greedy local Belady global."""
        n = 6
        table = {page: list(range(n)) for page in range(30)}
        dist = ExplicitHashes(n, table)
        rng = np.random.Generator(np.random.PCG64(8))
        pages = rng.integers(0, 30, size=600, dtype=np.int64)
        d_misses = DBeladyCache(n, dist=dist).run(pages).num_misses
        full_misses = BeladyCache(n).run(pages).num_misses
        assert d_misses == full_misses
