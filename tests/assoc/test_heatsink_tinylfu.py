"""Tests for the sketch-gated (heat-sink × TinyLFU) hybrid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.heatsink import HeatSinkLRU
from repro.core.assoc.heatsink_tinylfu import SketchHeatSinkLRU
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace


def mk(**kw) -> SketchHeatSinkLRU:
    defaults = dict(capacity=128, bin_size=4, sink_size=16, sink_prob=0.05, seed=1)
    defaults.update(kw)
    return SketchHeatSinkLRU(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mk(bias=1.5)
        with pytest.raises(ConfigurationError):
            mk(bias=-0.1)
        with pytest.raises(ConfigurationError):
            mk(hot_threshold=0)
        with pytest.raises(ConfigurationError):
            mk(cold_prob=2.0)
        with pytest.raises(ConfigurationError):
            mk(hot_prob=-0.5)

    def test_hot_prob_defaults_to_sink_prob(self):
        assert mk().hot_prob == pytest.approx(0.05)
        assert mk(hot_prob=0.2).hot_prob == pytest.approx(0.2)

    def test_name_carries_bias(self):
        assert "bias=0.5" in mk(bias=0.5).name


class TestDegenerateBias:
    def test_bias_zero_is_vanilla_heatsink_bit_for_bit(self):
        """bias=0 must reproduce HeatSinkLRU exactly: one uniform per miss
        either way, so equal seeds give identical hits AND final state."""
        for seed in (0, 3, 11):
            rng = np.random.Generator(np.random.PCG64(seed))
            pages = rng.integers(0, 600, size=6000, dtype=np.int64)
            vanilla = HeatSinkLRU(128, bin_size=4, sink_size=16, sink_prob=0.05, seed=seed)
            hybrid = mk(bias=0.0, seed=seed)
            assert np.array_equal(vanilla.run(pages).hits, hybrid.run(pages).hits)
            assert vanilla.contents() == hybrid.contents()

    def test_bias_zero_skips_the_sketch_lookup_in_probability(self):
        hs = mk(bias=0.0)
        assert hs.routing_probability(42) == pytest.approx(hs.sink_prob)


class TestRoutingProbability:
    def test_first_sighting_routes_at_cold_prob(self):
        hs = mk(bias=1.0, cold_prob=0.9)
        hs._sketch.increment(7)  # what access() does before routing
        assert hs.routing_probability(7) == pytest.approx(0.9)

    def test_hot_page_routes_at_hot_prob(self):
        hs = mk(bias=1.0, cold_prob=0.9)
        for _ in range(5):
            hs._sketch.increment(7)
        assert hs.routing_probability(7) == pytest.approx(hs.hot_prob)

    def test_partial_bias_interpolates(self):
        hs = mk(bias=0.5, cold_prob=0.9)
        hs._sketch.increment(7)
        expected = 0.5 * hs.sink_prob + 0.5 * 0.9
        assert hs.routing_probability(7) == pytest.approx(expected)

    def test_wide_threshold_ramps_linearly(self):
        hs = mk(bias=1.0, hot_threshold=5, cold_prob=0.9, hot_prob=0.1)
        hs._sketch.increment(7)  # estimate 1 -> coldness 1
        assert hs.routing_probability(7) == pytest.approx(0.9)
        for _ in range(2):
            hs._sketch.increment(7)  # estimate 3 -> coldness 0.5
        assert hs.routing_probability(7) == pytest.approx(0.5)
        for _ in range(10):
            hs._sketch.increment(7)  # saturated hot
        assert hs.routing_probability(7) == pytest.approx(0.1)


class TestStateAndInstrumentation:
    def test_reset_clears_sketch_and_counters(self):
        hs = mk()
        hs.run(np.arange(3000, dtype=np.int64))
        assert hs.sketch_estimate(2999) >= 1
        hs.reset()
        assert hs.sketch_estimate(2999) == 0
        assert hs._cold_routings == 0
        assert len(hs) == 0

    def test_cold_scan_is_counted_as_cold_routings(self):
        hs = mk(bias=1.0, cold_prob=1.0)
        result = hs.run(np.arange(5000, dtype=np.int64))  # pure one-shot scan
        # every one-shot page routes (cold_prob=1), but sketch collisions
        # can make a fresh page read estimate > 1 — the counter tracks the
        # subset that *provably* looked cold, so it is a strict majority,
        # not the full count
        assert 2000 < result.extra["cold_routings"] <= 5000
        assert result.extra["sketch_agings"] > 0

    def test_instrumentation_includes_base_fields(self):
        result = mk().run(np.arange(2000, dtype=np.int64))
        assert "sink_routings" in result.extra
        assert "cold_routings" in result.extra


class TestBehaviour:
    def test_scan_protection_beats_vanilla(self):
        """The hybrid's reason to exist: on a hot-set + cold-scan mix the
        sketch routes one-shot pages into the sink and the bins' LRU
        stacks stay warm. Seeded, margin well below the measured gain."""
        rng = np.random.Generator(np.random.PCG64(21))
        hot = rng.integers(0, 120, size=2000)
        chunks = []
        next_cold = 10_000
        for _ in range(20):
            chunks.append(rng.integers(0, 120, size=2000))
            chunks.append(np.arange(next_cold, next_cold + 600))
            next_cold += 600
        trace = np.concatenate([hot, *chunks]).astype(np.int64)
        kw = dict(capacity=256, bin_size=4, sink_size=32, sink_prob=0.05, seed=9)
        vanilla = HeatSinkLRU(**kw).run(trace).num_misses
        hybrid = SketchHeatSinkLRU(**kw).run(trace).num_misses
        assert hybrid < vanilla

    def test_zipf_not_degraded(self):
        """On the skew-friendly workload the bias must not hurt: repeat
        pages read hot and route at sink_prob, preserving the drain."""
        trace = zipf_trace(2000, 30_000, alpha=1.1, seed=13)
        kw = dict(capacity=256, bin_size=4, sink_size=32, sink_prob=0.05, seed=5)
        vanilla = HeatSinkLRU(**kw).run(trace).num_misses
        hybrid = SketchHeatSinkLRU(**kw).run(trace).num_misses
        assert hybrid <= vanilla * 1.02
