"""Tests for d-FIFO, set-/skew-associative LRU, victim, and cuckoo caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.cuckoo import CuckooCache
from repro.core.assoc.d_fifo import DFifoCache
from repro.core.assoc.hashdist import ExplicitHashes
from repro.core.assoc.set_assoc import SetAssociativeLRU
from repro.core.assoc.skew_assoc import SkewedAssociativeLRU
from repro.core.assoc.victim import VictimCache
from repro.errors import CapacityError


class TestDFifo:
    def test_evicts_oldest_installed_not_oldest_accessed(self):
        dist = ExplicitHashes(2, {1: [0, 0], 2: [1, 1], 3: [0, 1]})
        cache = DFifoCache(2, dist=dist)
        cache.access(1)  # installed first
        cache.access(2)
        cache.access(1)  # refresh ACCESS time only; install time unchanged
        cache.access(3)  # d-FIFO evicts 1 (oldest install); d-LRU would evict 2
        assert cache.contents() == {2, 3}

    def test_prefers_empty(self):
        dist = ExplicitHashes(3, {1: [0, 1], 2: [0, 2]})
        cache = DFifoCache(3, dist=dist)
        cache.access(1)
        cache.access(2)
        assert len(cache) == 2


class TestSetAssociative:
    def test_pages_stay_in_their_set(self):
        cache = SetAssociativeLRU(32, d=4, seed=1)
        rng = np.random.Generator(np.random.PCG64(2))
        for p in rng.integers(0, 200, size=1000).tolist():
            cache.access(int(p))
            slot = cache.slot_of(int(p))
            expected_set = cache.dist.positions(int(p))[0] // 4
            assert slot // 4 == expected_set

    def test_num_sets(self):
        assert SetAssociativeLRU(32, d=4, seed=1).num_sets == 8

    def test_per_set_lru(self):
        """Within one set the eviction order is exactly LRU."""
        cache = SetAssociativeLRU(8, d=2, seed=3)
        # find 3 pages in the same set
        pages_by_set: dict[int, list[int]] = {}
        p = 0
        while True:
            s = cache.dist.positions(p)[0] // 2
            pages_by_set.setdefault(s, []).append(p)
            if len(pages_by_set[s]) == 3:
                a, b, c = pages_by_set[s]
                break
            p += 1
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b
        assert cache.contents() >= {a, c}
        assert b not in cache.contents()


class TestSkewedAssociative:
    def test_one_slot_per_bank(self):
        cache = SkewedAssociativeLRU(32, d=4, seed=4)
        assert cache.bank_size == 8
        for p in range(100):
            positions = cache.dist.positions(p)
            banks = {pos // 8 for pos in positions}
            assert banks == {0, 1, 2, 3}


class TestVictimCache:
    def test_victim_catches_conflict_evictions(self):
        cache = VictimCache(8, victim_size=4, seed=5)
        # find two pages with the same direct-mapped slot
        a, b = None, None
        for p in range(1000):
            for q in range(p + 1, 1000):
                if cache._main_slot(p) == cache._main_slot(q):
                    a, b = p, q
                    break
            if a is not None:
                break
        cache.access(a)
        cache.access(b)  # a demoted into victim buffer
        assert a in cache.contents()
        assert cache.access(a) is True  # victim hit, swaps back
        assert cache._main[cache._main_slot(a)] == a

    def test_promotion_swaps_occupant(self):
        cache = VictimCache(8, victim_size=4, seed=5)
        a, b = None, None
        for p in range(1000):
            for q in range(p + 1, 1000):
                if cache._main_slot(p) == cache._main_slot(q):
                    a, b = p, q
                    break
            if a is not None:
                break
        cache.access(a)
        cache.access(b)
        cache.access(a)  # promote a, demote b to victim
        assert b in cache.contents()

    def test_lru_within_victim(self):
        cache = VictimCache(4, victim_size=2, seed=6)
        rng = np.random.Generator(np.random.PCG64(7))
        for p in rng.integers(0, 50, size=500).tolist():
            cache.access(int(p))
            assert len(cache) <= 4

    def test_validation(self):
        with pytest.raises(CapacityError):
            VictimCache(4, victim_size=0)
        with pytest.raises(CapacityError):
            VictimCache(4, victim_size=4)

    def test_promotions_instrumented(self):
        cache = VictimCache(8, victim_size=4, seed=8)
        result = cache.run(np.arange(100, dtype=np.int64))
        assert "victim_promotions" in result.extra


class TestCuckoo:
    def test_relocation_preserves_all_pages_when_space_exists(self):
        """With plenty of slack, cuckoo inserts should almost never drop
        resident pages (relocations resolve conflicts)."""
        cache = CuckooCache(64, d=2, seed=9, max_kicks=16)
        pages = np.arange(20, dtype=np.int64)
        cache.run(pages)
        assert len(cache) == 20  # everything placed, nothing evicted

    def test_zero_kicks_still_valid(self):
        cache = CuckooCache(16, d=2, seed=10, max_kicks=0)
        rng = np.random.Generator(np.random.PCG64(11))
        for p in rng.integers(0, 60, size=500).tolist():
            cache.access(int(p))
            assert int(p) in cache.contents()
            assert len(cache) <= 16

    def test_accessed_page_survives_own_chain(self):
        """Regression: a kick chain must never end with the accessed page
        itself evicted."""
        for seed in range(30):
            cache = CuckooCache(4, d=2, seed=seed, max_kicks=8)
            rng = np.random.Generator(np.random.PCG64(seed))
            for p in rng.integers(0, 20, size=200).tolist():
                cache.access(int(p))
                assert int(p) in cache.contents()

    def test_kick_instrumentation(self):
        cache = CuckooCache(8, d=2, seed=12, max_kicks=4)
        result = cache.run(np.arange(200, dtype=np.int64))
        assert result.extra["total_kicks"] >= 0
        assert result.extra["chain_evictions"] >= 0

    def test_each_page_in_own_slots(self):
        cache = CuckooCache(32, d=3, seed=13, max_kicks=6)
        rng = np.random.Generator(np.random.PCG64(14))
        for p in rng.integers(0, 100, size=1000).tolist():
            cache.access(int(p))
        for page in cache.contents():
            assert cache.slot_of(page) in cache.dist.positions(page)
