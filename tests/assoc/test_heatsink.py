"""Tests for HEAT-SINK LRU — §5 semantics, sizing, and mechanism."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.assoc.heatsink import HeatSinkLRU
from repro.core.fully.lru import LRUCache
from repro.errors import CapacityError, ConfigurationError
from repro.traces.phases import working_set_trace


def mk(capacity=64, bin_size=4, sink_size=8, sink_prob=0.2, seed=0) -> HeatSinkLRU:
    return HeatSinkLRU(
        capacity, bin_size=bin_size, sink_size=sink_size, sink_prob=sink_prob, seed=seed
    )


class TestConstruction:
    def test_region_partition(self):
        hs = mk(capacity=64, bin_size=4, sink_size=8)
        assert hs.num_bins == 14
        assert hs.main_size == 56
        assert hs.sink_size == 8
        assert hs.main_size + hs.sink_size == hs.capacity

    def test_remainder_donated_to_sink(self):
        hs = HeatSinkLRU(67, bin_size=4, sink_size=8, sink_prob=0.1)
        assert hs.main_size == 56
        assert hs.sink_size == 11  # 8 + 3 leftover slots

    def test_associativity(self):
        assert mk(bin_size=6).associativity == 8

    def test_from_epsilon_matches_theorem(self):
        hs = HeatSinkLRU.from_epsilon(1000, 0.25, seed=1)
        assert hs.bin_size == 64  # ceil(0.25^-3)
        assert hs.sink_prob == pytest.approx(0.0625)
        assert hs.sink_size >= math.ceil(0.25 * 1000)
        assert hs.main_size >= 1000
        # total is about (1+eps)n
        assert hs.capacity <= 1.4 * 1000

    def test_from_epsilon_bin_override(self):
        hs = HeatSinkLRU.from_epsilon(1000, 0.25, bin_size=16, seed=1)
        assert hs.bin_size == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mk(bin_size=0)
        with pytest.raises(CapacityError):
            mk(sink_size=1)
        with pytest.raises(ConfigurationError):
            mk(sink_prob=1.5)
        with pytest.raises(CapacityError):
            HeatSinkLRU(10, bin_size=20, sink_size=8, sink_prob=0.1)
        with pytest.raises(ConfigurationError):
            HeatSinkLRU.from_epsilon(1000, 1.5)
        with pytest.raises(ConfigurationError):
            HeatSinkLRU.from_epsilon(0, 0.25)


class TestResidency:
    def test_page_in_bin_or_sink_slots_only(self):
        hs = mk(seed=2)
        rng = np.random.Generator(np.random.PCG64(3))
        for p in rng.integers(0, 300, size=3000).tolist():
            hs.access(int(p))
            loc = hs._loc[int(p)]
            bin_idx, s1, s2 = hs._hashes(int(p))
            if loc >= 0:
                assert loc == bin_idx
            else:
                assert -(loc + 1) in (s1, s2)

    def test_capacity_never_exceeded(self):
        hs = mk(seed=4)
        rng = np.random.Generator(np.random.PCG64(5))
        for p in rng.integers(0, 500, size=5000).tolist():
            hs.access(int(p))
            assert len(hs) <= hs.capacity
            assert hs.bin_loads().max() <= hs.bin_size

    def test_intra_bin_lru(self):
        """Within a bin, the eviction victim is the least recently used."""
        hs = HeatSinkLRU(10, bin_size=2, sink_size=2, sink_prob=0.0, seed=6)
        # find three pages in the same bin
        by_bin: dict[int, list[int]] = {}
        page = 0
        while True:
            b = hs.bin_of(page)
            by_bin.setdefault(b, []).append(page)
            if len(by_bin[b]) == 3:
                a, b2, c = by_bin[b]
                break
            page += 1
        hs.access(a)
        hs.access(b2)
        hs.access(a)  # refresh a
        hs.access(c)  # bin full: evicts b2 (LRU)
        assert b2 not in hs.contents()
        assert a in hs.contents()

    def test_sink_prob_zero_never_routes_to_sink(self):
        hs = mk(sink_prob=0.0, seed=7)
        rng = np.random.Generator(np.random.PCG64(8))
        for p in rng.integers(0, 500, size=2000).tolist():
            hs.access(int(p))
        assert hs.sink_occupancy() == 0.0
        assert hs._sink_routings == 0

    def test_sink_prob_one_routes_everything(self):
        hs = mk(sink_prob=1.0, seed=9)
        for p in range(100):
            hs.access(p)
        assert hs._bin_routings == 0
        assert all(len(b) == 0 for b in hs._bins)

    def test_coin_is_per_miss_not_per_page(self):
        """The same page routed to the bin once can later land in the sink
        (independent coin per miss)."""
        hs = HeatSinkLRU(20, bin_size=2, sink_size=4, sink_prob=0.5, seed=10)
        page = 0
        destinations = set()
        for trial in range(200):
            hs.reset()
            hs.access(page)
            destinations.add("sink" if hs._loc[page] < 0 else "bin")
            if len(destinations) == 2:
                break
        assert destinations == {"bin", "sink"}


class TestRoutingStatistics:
    def test_sink_share_matches_probability(self):
        hs = mk(capacity=256, bin_size=4, sink_size=32, sink_prob=0.15, seed=11)
        rng = np.random.Generator(np.random.PCG64(12))
        pages = rng.integers(0, 100_000, size=20_000, dtype=np.int64)  # ~all misses
        result = hs.run(pages)
        share = result.extra["sink_routings"] / (
            result.extra["sink_routings"] + result.extra["bin_routings"]
        )
        assert abs(share - 0.15) < 0.02

    def test_instrumentation_keys(self):
        result = mk(seed=13).run(np.arange(100, dtype=np.int64))
        for key in ("sink_routings", "bin_routings", "sink_evictions",
                    "bin_evictions", "bin_misses", "sink_occupancy"):
            assert key in result.extra


class TestMechanism:
    def test_sink_rescues_saturated_bins(self):
        """The headline mechanism: at working set == bin-region capacity,
        the sink turns steady-state thrash into near-zero misses."""
        n = 512
        eps = 0.25
        b = int(math.ceil(eps**-3))
        sink = max(2, math.ceil(eps * n))
        nb = math.ceil(n / b)
        cap = nb * b + sink
        trace = working_set_trace(nb * b, 120_000, locality=1.0, universe=nb * b, seed=14)
        warm = 60_000
        with_sink = HeatSinkLRU(cap, bin_size=b, sink_size=sink, sink_prob=eps**2, seed=15)
        without = HeatSinkLRU(cap, bin_size=b, sink_size=sink, sink_prob=0.0, seed=15)
        m_with = int((~with_sink.run(trace).hits[warm:]).sum())
        m_without = int((~without.run(trace).hits[warm:]).sum())
        assert m_with < 0.1 * m_without
        assert m_without > 500  # binned LRU alone genuinely thrashes here

    def test_tracks_full_lru_on_zipf(self):
        """Theorem-4 shape: HEAT-SINK at (1+eps)n within a modest factor of
        full LRU at the same total capacity on a benign workload."""
        from repro.traces.synthetic import zipf_trace

        hs = HeatSinkLRU.from_epsilon(512, 0.33, seed=16)
        trace = zipf_trace(4096, 100_000, alpha=0.9, seed=17)
        hs_misses = hs.run(trace).num_misses
        lru_misses = LRUCache(hs.capacity).run(trace).num_misses
        assert hs_misses <= 1.15 * lru_misses

    def test_reset_full(self):
        hs = mk(seed=18)
        for p in range(200):
            hs.access(p)
        hs.reset()
        assert len(hs) == 0
        assert hs.sink_occupancy() == 0.0
        assert hs.bin_loads().sum() == 0
        assert hs.bin_eviction_counts().sum() == 0
