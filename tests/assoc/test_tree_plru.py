"""Tests for tree-PLRU — hardware pseudo-LRU semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.set_assoc import SetAssociativeLRU
from repro.core.assoc.tree_plru import TreePLRUCache
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import zipf_trace
from tests.helpers import reference_policy_check


class TestConstruction:
    def test_layout(self):
        c = TreePLRUCache(64, ways=8)
        assert c.num_sets == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TreePLRUCache(64, ways=3)  # not a power of two
        with pytest.raises(ConfigurationError):
            TreePLRUCache(64, ways=1)
        with pytest.raises(ConfigurationError):
            TreePLRUCache(60, ways=8)  # not divisible


class TestSemantics:
    def test_invariants(self):
        rng = np.random.Generator(np.random.PCG64(1))
        for trial in range(8):
            pages = rng.integers(0, 60, size=500, dtype=np.int64)
            reference_policy_check(TreePLRUCache(16, ways=4, seed=trial), pages)

    def test_two_way_tree_is_exact_lru(self):
        """With 2 ways the single tree bit IS exact LRU: the two must agree
        access-for-access when given identical set hashes."""
        tree = TreePLRUCache(32, ways=2, seed=5)
        # build an exact 2-way set-assoc LRU over the SAME set function by
        # driving per-set reference LRU caches manually
        from collections import OrderedDict

        sets: dict[int, OrderedDict] = {i: OrderedDict() for i in range(16)}
        rng = np.random.Generator(np.random.PCG64(2))
        for page in rng.integers(0, 200, size=3000).tolist():
            s = tree.set_of(int(page))
            ref = sets[s]
            expected_hit = page in ref
            if expected_hit:
                ref.move_to_end(page)
            else:
                if len(ref) >= 2:
                    ref.popitem(last=False)
                ref[page] = None
            assert tree.access(int(page)) == expected_hit

    def test_victim_is_never_most_recent(self):
        """PLRU guarantee: the most recently touched way is never evicted."""
        c = TreePLRUCache(8, ways=8, seed=3)
        # all pages in one set (num_sets == 1)
        pages = list(range(20))
        last = None
        for p in pages:
            before = c.contents()
            c.access(p)
            if last is not None and last in before:
                assert last in c.contents(), "most recent way was evicted"
            last = p

    def test_fills_invalid_ways_first(self):
        c = TreePLRUCache(8, ways=8)
        for p in range(8):
            c.access(p)
        assert c.contents() == set(range(8))

    def test_close_to_true_lru_quality(self):
        """Tree-PLRU tracks exact set-assoc LRU within a few percent."""
        trace = zipf_trace(4096, 100_000, alpha=1.0, seed=4)
        plru = TreePLRUCache(512, ways=8, seed=6).run(trace).miss_rate
        exact = SetAssociativeLRU(512, d=8, seed=6).run(trace).miss_rate
        assert plru == pytest.approx(exact, rel=0.06)

    def test_melts_on_adversarial_like_exact_lru(self):
        """The Theorem-2 dance is not an exact-recency artifact."""
        from repro.traces.adversarial import build_theorem2_sequence

        n = 1024
        seq = build_theorem2_sequence(n, rounds=20, seed=7)
        plru = TreePLRUCache(n, ways=2, seed=8)
        result = plru.run(seq.trace)
        miss = ~result.hits[seq.t0 :]
        per = miss.size // 20
        late = miss[: per * 20].reshape(20, per).sum(axis=1)[-5:].mean()
        assert late > 5  # persistent per-round misses, like 2-LRU

    def test_reset(self):
        c = TreePLRUCache(16, ways=4)
        for p in range(50):
            c.access(p)
        c.reset()
        assert len(c) == 0
