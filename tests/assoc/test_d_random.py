"""Tests for 2-RANDOM / d-RANDOM — §2/§4 semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.d_random import DRandomCache
from repro.core.assoc.hashdist import ExplicitHashes
from repro.graphtools.orientation import is_one_orientable


class TestPaperSemantics:
    def test_blind_eviction_ignores_empty_slots(self):
        """The paper's 2-RANDOM may overwrite an occupied slot even when
        the other hash is free; over many seeds both choices must occur."""
        overwrote = kept = 0
        for seed in range(40):
            dist = ExplicitHashes(4, {1: [0, 1], 2: [1, 2]})
            cache = DRandomCache(4, dist=dist, seed=seed)
            cache.access(1)
            if cache.slot_of(1) != 1:
                continue  # need page 1 sitting in the shared slot 1
            cache.access(2)  # slots {1, 2}: slot 2 is empty, slot 1 has page 1
            if 1 in cache.contents():
                kept += 1
            else:
                overwrote += 1
        assert overwrote > 0, "blind 2-RANDOM must sometimes evict despite a free slot"
        assert kept > 0

    def test_occupancy_aware_prefers_empty(self):
        for seed in range(20):
            dist = ExplicitHashes(4, {1: [0, 1], 2: [1, 2]})
            cache = DRandomCache(4, dist=dist, seed=seed, occupancy_aware=True)
            cache.access(1)
            cache.access(2)
            assert 1 in cache.contents()  # never clobbers while 2 has a free slot

    def test_choice_roughly_balanced(self):
        """The placement slot should be ~50/50 between the two hashes."""
        first = 0
        trials = 400
        for seed in range(trials):
            cache = DRandomCache(64, d=2, seed=seed)
            cache.access(7)
            if cache.slot_of(7) == cache.dist.positions(7)[0]:
                first += 1
        assert 0.4 * trials < first < 0.6 * trials

    def test_deterministic_per_seed(self):
        rng = np.random.Generator(np.random.PCG64(1))
        pages = rng.integers(0, 100, size=1500, dtype=np.int64)
        a = DRandomCache(32, d=2, seed=9).run(pages)
        b = DRandomCache(32, d=2, seed=9).run(pages)
        assert np.array_equal(a.hits, b.hits)

    def test_eviction_coins_independent_of_hash_salt(self):
        """Hashes must be predictable (oblivious adversary) while coins are
        a separate stream: two caches with the same seed share hashes."""
        a = DRandomCache(32, d=2, seed=3)
        b = DRandomCache(32, d=2, seed=3)
        for page in range(50):
            assert a.dist.positions(page) == b.dist.positions(page)


class TestHeatDissipationFixedPoint:
    def test_settles_when_orientable(self):
        """Lemma 7's moral: once a compatible placement exists, repeated
        passes over a storable set converge to zero misses."""
        n = 256
        rng = np.random.Generator(np.random.PCG64(5))
        pages = np.arange(n // 16, dtype=np.int64)  # tiny working set
        cache = DRandomCache(n, d=2, seed=6)
        edges = cache.dist.positions_batch(pages)
        assert is_one_orientable(n, edges)  # storable together
        last_pass_misses = None
        for _ in range(60):
            result = cache.run(pages, reset=False)
            last_pass_misses = result.num_misses
        assert last_pass_misses == 0

    def test_never_settles_when_not_orientable(self):
        """Three pages sharing the same two slots can never coexist."""
        dist = ExplicitHashes(8, {1: [0, 1], 2: [0, 1], 3: [0, 1]})
        cache = DRandomCache(8, dist=dist, seed=7)
        pages = np.array([1, 2, 3], dtype=np.int64)
        total_misses = 0
        for _ in range(50):
            total_misses += cache.run(pages, reset=False).num_misses
        assert total_misses >= 50  # at least one miss per pass, forever


class TestGeneralized:
    def test_d4_works(self):
        cache = DRandomCache(64, d=4, seed=8)
        rng = np.random.Generator(np.random.PCG64(9))
        for p in rng.integers(0, 300, size=2000).tolist():
            cache.access(int(p))
            assert cache.slot_of(int(p)) in cache.dist.positions(int(p))

    def test_name_reflects_variant(self):
        assert "RANDOM" in DRandomCache(8, d=2, seed=1).name
        assert "aware" in DRandomCache(8, d=2, seed=1, occupancy_aware=True).name
