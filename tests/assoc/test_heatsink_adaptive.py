"""Tests for the adaptive HEAT-SINK variant."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.assoc.heatsink import HeatSinkLRU
from repro.core.assoc.heatsink_adaptive import AdaptiveHeatSinkLRU
from repro.errors import ConfigurationError
from repro.traces.phases import working_set_trace


def mk(gain=0.5, **kw) -> AdaptiveHeatSinkLRU:
    defaults = dict(capacity=128, bin_size=4, sink_size=16, sink_prob=0.05, seed=1)
    defaults.update(kw)
    return AdaptiveHeatSinkLRU(**defaults, gain=gain)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mk(gain=-1.0)
        with pytest.raises(ConfigurationError):
            mk(max_prob=0.0)
        with pytest.raises(ConfigurationError):
            mk(decay=1.0)

    def test_from_epsilon_matches_base_sizing(self):
        base = HeatSinkLRU.from_epsilon(500, 0.25, seed=2)
        adaptive = AdaptiveHeatSinkLRU.from_epsilon(500, 0.25, seed=2)
        assert adaptive.capacity == base.capacity
        assert adaptive.bin_size == base.bin_size
        assert adaptive.sink_size == base.sink_size
        assert adaptive.sink_prob == base.sink_prob


class TestAdaptivity:
    def test_cool_bins_route_at_base_rate(self):
        hs = mk()
        for b in range(hs.num_bins):
            assert hs.bin_probability(b) == pytest.approx(hs.sink_prob)

    def test_pressure_raises_probability(self):
        hs = mk(gain=1.0)
        hs._pressure[3] = 5.0
        assert hs.bin_probability(3) > hs.sink_prob

    def test_probability_clipped(self):
        hs = mk(gain=100.0, max_prob=0.4)
        hs._pressure[0] = 1000.0
        assert hs.bin_probability(0) == pytest.approx(0.4)

    def test_zero_gain_reduces_to_fixed(self):
        """gain = 0 must reproduce the fixed-coin policy exactly (the coin
        stream and routing logic are shared)."""
        rng = np.random.Generator(np.random.PCG64(3))
        pages = rng.integers(0, 600, size=5000, dtype=np.int64)
        fixed = HeatSinkLRU(128, bin_size=4, sink_size=16, sink_prob=0.05, seed=7)
        adaptive = mk(gain=0.0, seed=7)
        assert np.array_equal(fixed.run(pages).hits, adaptive.run(pages).hits)

    def test_pressure_decays(self):
        hs = mk(decay=0.5)
        hs._pressure[0] = 8.0
        # a miss on an empty bin decays pressure without adding
        hs._route_to_sink(page=0, bin_idx=0)
        assert hs._pressure[0] == pytest.approx(4.0)

    def test_reset_clears_pressure(self):
        hs = mk()
        hs._pressure[:] = 3.0
        hs.reset()
        assert hs._pressure.sum() == 0.0

    def test_instrumentation(self):
        hs = mk()
        result = hs.run(np.arange(2000, dtype=np.int64))
        assert "adaptive_routings" in result.extra
        assert "max_bin_pressure" in result.extra


class TestBehaviour:
    def test_drains_saturated_bins_at_least_as_fast_as_fixed(self):
        """On the saturated-bin workload adaptivity should not be worse
        than the fixed coin (usually better: it targets the hot bins)."""
        n = 512
        eps = 0.25
        b = int(math.ceil(eps**-3))
        sink = max(2, math.ceil(eps * n))
        nb = math.ceil(n / b)
        cap = nb * b + sink
        trace = working_set_trace(nb * b, 100_000, locality=1.0, universe=nb * b, seed=4)
        warm = 50_000
        fixed = HeatSinkLRU(cap, bin_size=b, sink_size=sink, sink_prob=eps**2, seed=5)
        adaptive = AdaptiveHeatSinkLRU(
            cap, bin_size=b, sink_size=sink, sink_prob=eps**2, gain=0.5, seed=5
        )
        m_fixed = int((~fixed.run(trace).hits[warm:]).sum())
        m_adaptive = int((~adaptive.run(trace).hits[warm:]).sum())
        assert m_adaptive <= m_fixed * 1.5 + 50
