"""Tests for repro.core.assoc.hashdist — hash distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.hashdist import (
    ExplicitHashes,
    HotSpotHashes,
    OffsetHashes,
    SetAssociativeHashes,
    SkewedHashes,
    UniformHashes,
)
from repro.errors import ConfigurationError


ALL_DIST_FACTORIES = [
    ("uniform", lambda n, d: UniformHashes(n, d, seed=1)),
    ("offset", lambda n, d: OffsetHashes(n, d, seed=1)),
    ("skewed", lambda n, d: SkewedHashes(n, d, seed=1)),
    ("setassoc", lambda n, d: SetAssociativeHashes(n, d, seed=1)),
    ("hotspot", lambda n, d: HotSpotHashes(n, d, hot_slots=max(1, n // 8), seed=1)),
]


@pytest.mark.parametrize("label,factory", ALL_DIST_FACTORIES)
class TestCommonContract:
    N, D = 64, 4

    def test_shape_and_range(self, label, factory):
        dist = factory(self.N, self.D)
        pages = np.arange(200, dtype=np.int64)
        out = dist.positions_batch(pages)
        assert out.shape == (200, self.D)
        assert out.min() >= 0 and out.max() < self.N

    def test_deterministic_per_page(self, label, factory):
        dist = factory(self.N, self.D)
        a = dist.positions_batch(np.arange(50, dtype=np.int64))
        b = dist.positions_batch(np.arange(50, dtype=np.int64))
        assert np.array_equal(a, b)

    def test_scalar_matches_batch(self, label, factory):
        dist = factory(self.N, self.D)
        batch = dist.positions_batch(np.arange(20, dtype=np.int64))
        for page in range(20):
            assert dist.positions(page) == tuple(batch[page].tolist())

    def test_independent_instances_agree(self, label, factory):
        """Hashes are pure functions of (seed, page): two instances with
        the same seed agree — required for the oblivious adversary."""
        a = factory(self.N, self.D).positions_batch(np.arange(100, dtype=np.int64))
        b = factory(self.N, self.D).positions_batch(np.arange(100, dtype=np.int64))
        assert np.array_equal(a, b)

    def test_validation(self, label, factory):
        with pytest.raises(ConfigurationError):
            factory(0, 2)
        with pytest.raises(ConfigurationError):
            factory(8, 0)
        with pytest.raises(ConfigurationError):
            factory(2, 8)


class TestUniform:
    def test_marginals_roughly_uniform(self):
        dist = UniformHashes(32, 3, seed=2)
        out = dist.positions_batch(np.arange(100_000, dtype=np.int64))
        for j in range(3):
            counts = np.bincount(out[:, j], minlength=32)
            assert counts.max() < 1.25 * counts.min()

    def test_hash_indices_independent(self):
        dist = UniformHashes(1024, 2, seed=3)
        out = dist.positions_batch(np.arange(50_000, dtype=np.int64))
        collisions = float((out[:, 0] == out[:, 1]).mean())
        assert abs(collisions - 1 / 1024) < 5e-3

    def test_semi_uniform_flag(self):
        assert UniformHashes(8, 2).is_semi_uniform


class TestSetAssociative:
    def test_positions_form_aligned_sets(self):
        dist = SetAssociativeHashes(64, 4, seed=4)
        out = dist.positions_batch(np.arange(500, dtype=np.int64))
        assert np.all(out[:, 0] % 4 == 0)
        for j in range(4):
            assert np.all(out[:, j] == out[:, 0] + j)

    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeHashes(10, 4)

    def test_num_sets(self):
        assert SetAssociativeHashes(64, 4).num_sets == 16


class TestSkewed:
    def test_one_position_per_bank(self):
        dist = SkewedHashes(64, 4, seed=5)
        out = dist.positions_batch(np.arange(500, dtype=np.int64))
        for j in range(4):
            bank = out[:, j] // 16
            assert np.all(bank == j)

    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            SkewedHashes(10, 4)


class TestOffset:
    def test_window_structure(self):
        dist = OffsetHashes(32, 3, stride=2, seed=6)
        out = dist.positions_batch(np.arange(100, dtype=np.int64))
        assert np.all(out[:, 1] == (out[:, 0] + 2) % 32)
        assert np.all(out[:, 2] == (out[:, 0] + 4) % 32)

    def test_marginals_uniform(self):
        """Fully dependent but each marginal exactly uniform in law."""
        dist = OffsetHashes(16, 2, seed=7)
        out = dist.positions_batch(np.arange(80_000, dtype=np.int64))
        counts = np.bincount(out[:, 1], minlength=16)
        assert counts.max() < 1.2 * counts.min()

    def test_invalid_stride(self):
        with pytest.raises(ConfigurationError):
            OffsetHashes(16, 2, stride=0)


class TestHotSpot:
    def test_violates_semi_uniformity_flag(self):
        assert not HotSpotHashes(64, 2, hot_slots=4).is_semi_uniform

    def test_hot_region_overloaded(self):
        n, hot = 1024, 16
        dist = HotSpotHashes(n, 2, hot_slots=hot, hot_prob=0.5, seed=8)
        out = dist.positions_batch(np.arange(100_000, dtype=np.int64))
        hot_share = float((out[:, 0] < hot).mean())
        # ~50% hot + (16/1024) background ≫ uniform share
        assert hot_share > 0.4

    def test_hot_prob_zero_is_uniformish(self):
        dist = HotSpotHashes(64, 2, hot_slots=4, hot_prob=0.0, seed=9)
        out = dist.positions_batch(np.arange(50_000, dtype=np.int64))
        counts = np.bincount(out[:, 0], minlength=64)
        assert counts.max() < 1.3 * counts.min()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotSpotHashes(16, 2, hot_slots=0)
        with pytest.raises(ConfigurationError):
            HotSpotHashes(16, 2, hot_slots=4, hot_prob=1.5)


class TestExplicit:
    def test_lookup(self):
        dist = ExplicitHashes(8, {1: [0, 3], 2: [4, 5]})
        assert dist.positions(1) == (0, 3)
        assert dist.positions_batch(np.array([2, 1])).tolist() == [[4, 5], [0, 3]]

    def test_unknown_page_raises(self):
        dist = ExplicitHashes(8, {1: [0, 1]})
        with pytest.raises(ConfigurationError):
            dist.positions(2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExplicitHashes(8, {})
        with pytest.raises(ConfigurationError):
            ExplicitHashes(8, {1: [0, 1], 2: [0]})  # inconsistent d
        with pytest.raises(ConfigurationError):
            ExplicitHashes(8, {1: [0, 9]})  # out of range
