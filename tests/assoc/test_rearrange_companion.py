"""Tests for RearrangingCache and CompanionCache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assoc.companion import CompanionCache
from repro.core.assoc.d_lru import PLruCache
from repro.core.assoc.hashdist import ExplicitHashes
from repro.core.assoc.rearrange import RearrangingCache
from repro.errors import CapacityError, ConfigurationError
from repro.graphtools.orientation import is_one_orientable
from tests.helpers import reference_policy_check


class TestRearrangeMechanics:
    def test_invariants(self):
        rng = np.random.Generator(np.random.PCG64(1))
        for trial in range(10):
            pages = rng.integers(0, 30, size=400, dtype=np.int64)
            reference_policy_check(RearrangingCache(8, d=2, seed=trial), pages)

    def test_resolves_conflict_without_eviction(self):
        """Three pages over three slots with pairwise conflicts: plain
        2-LRU must evict, rearrangement keeps all three."""
        dist = ExplicitHashes(3, {1: [0, 1], 2: [0, 1], 3: [0, 2]})
        cache = RearrangingCache(3, dist=dist)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # kick chain frees a slot via page 3's alt or moves
        assert cache.contents() == {1, 2, 3}

        plain = PLruCache(3, dist=ExplicitHashes(3, {1: [0, 1], 2: [0, 1], 3: [0, 2]}))
        plain.access(1)
        plain.access(2)
        plain.access(3)
        # 2-LRU may or may not conflict depending on slot choice; the point
        # of this test is only the rearranging cache's zero-eviction claim
        assert len(cache) == 3

    def test_holds_any_orientable_set(self):
        """Repeated passes over a storable set converge to zero misses —
        the rearranging cache achieves the offline orientation online."""
        n = 128
        cache = RearrangingCache(n, d=2, seed=3, max_bfs_nodes=n)
        pages = np.arange(n // 3, dtype=np.int64)
        edges = cache.dist.positions_batch(pages)
        assert is_one_orientable(n, edges)
        for _ in range(3):
            result = cache.run(pages, reset=False)
        assert result.num_misses == 0

    def test_moves_preserve_eligibility(self):
        cache = RearrangingCache(32, d=2, seed=4)
        rng = np.random.Generator(np.random.PCG64(5))
        for p in rng.integers(0, 64, size=1500).tolist():
            cache.access(int(p))
            for page in cache.contents():
                assert cache.slot_of(page) in cache.dist.positions(page)

    def test_moves_instrumented(self):
        cache = RearrangingCache(16, d=2, seed=6)
        result = cache.run(np.arange(100, dtype=np.int64) % 40)
        assert result.extra["total_moves"] >= 0
        assert "bfs_truncations" in result.extra

    def test_rearrangement_is_recency_neutral(self):
        """Free moves must not refresh a page's LRU standing."""
        dist = ExplicitHashes(3, {1: [0, 1], 2: [0, 1], 3: [0, 2], 4: [1, 2]})
        cache = RearrangingCache(3, dist=dist)
        cache.access(1)  # oldest
        cache.access(2)
        cache.access(3)  # may shuffle 1/2 around
        cache.access(4)  # full + conflict: must evict the LRU = page 1
        assert 1 not in cache.contents()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RearrangingCache(8, d=2, max_bfs_nodes=0)

    def test_small_budget_still_correct(self):
        rng = np.random.Generator(np.random.PCG64(7))
        pages = rng.integers(0, 40, size=600, dtype=np.int64)
        reference_policy_check(RearrangingCache(8, d=2, seed=8, max_bfs_nodes=1), pages)


class TestCompanionCache:
    def test_partition(self):
        c = CompanionCache(40, ways=4, companion_size=8)
        assert c.num_sets == 8
        assert c.main_size == 32
        assert c.companion_size == 8
        assert c.associativity == 12

    def test_remainder_to_companion(self):
        c = CompanionCache(41, ways=4, companion_size=8)
        assert c.main_size == 32
        assert c.companion_size == 9

    def test_validation(self):
        with pytest.raises(CapacityError):
            CompanionCache(8, ways=8, companion_size=4)
        with pytest.raises(ConfigurationError):
            CompanionCache(8, ways=0, companion_size=2)
        with pytest.raises(CapacityError):
            CompanionCache(8, ways=2, companion_size=0)

    def test_invariants(self):
        rng = np.random.Generator(np.random.PCG64(9))
        for trial in range(10):
            pages = rng.integers(0, 40, size=500, dtype=np.int64)
            reference_policy_check(
                CompanionCache(12, ways=2, companion_size=4, seed=trial), pages
            )

    def test_demotion_into_companion(self):
        c = CompanionCache(12, ways=2, companion_size=4, seed=1)
        # find 3 pages of the same set
        by_set: dict[int, list[int]] = {}
        p = 0
        while True:
            s = c.set_of(p)
            by_set.setdefault(s, []).append(p)
            if len(by_set[s]) == 3:
                a, b, d = by_set[s]
                break
            p += 1
        c.access(a)
        c.access(b)
        c.access(d)  # set full: a (LRU way) demotes into companion
        assert a in c.contents()
        assert a in c._companion

    def test_promotion_swaps_with_set_lru(self):
        c = CompanionCache(12, ways=2, companion_size=4, seed=1)
        by_set: dict[int, list[int]] = {}
        p = 0
        while True:
            s = c.set_of(p)
            by_set.setdefault(s, []).append(p)
            if len(by_set[s]) == 3:
                a, b, d = by_set[s]
                break
            p += 1
        c.access(a)
        c.access(b)
        c.access(d)  # a -> companion
        assert c.access(a) is True  # companion hit
        assert a in c._sets[c.set_of(a)]  # promoted back
        assert b in c._companion  # set LRU (b) swapped out

    def test_instrumentation(self):
        c = CompanionCache(12, ways=2, companion_size=4, seed=2)
        result = c.run(np.arange(200, dtype=np.int64) % 60)
        assert result.extra["demotions"] >= 0
        assert result.extra["promotions"] >= 0

    def test_better_than_plain_set_assoc_on_conflicts(self):
        """The companion absorbs set conflicts: with a hot set larger than
        one set's ways, the companion cache must beat bare set-assoc."""
        from repro.core.assoc.set_assoc import SetAssociativeLRU

        plain = SetAssociativeLRU(32, d=2, seed=3)
        # 4 hot pages that all conflict in the PLAIN cache's set 0: with
        # only 2 ways it thrashes on them forever
        hot = [p for p in range(2000) if plain.dist.positions(p)[0] == 0][:4]
        assert len(hot) == 4
        trace = np.tile(np.asarray(hot, dtype=np.int64), 200)
        plain_misses = plain.run(trace).num_misses
        c = CompanionCache(40, ways=2, companion_size=8, seed=3)
        companion_misses = c.run(trace).num_misses
        assert plain_misses > 100  # genuine thrash
        assert companion_misses <= len(hot) + 8  # cold + brief warm-up
