"""Tests for P-LRU / d-LRU — §2 semantics, equivalences, and the slotted base."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assoc.d_lru import PLruCache
from repro.core.assoc.hashdist import ExplicitHashes, SetAssociativeHashes, UniformHashes
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError


def full_assoc_dist(n: int) -> ExplicitHashes:
    """d = n distribution where every page may sit anywhere."""
    table = {page: list(range(n)) for page in range(64)}
    return ExplicitHashes(n, table)


class TestPaperSemantics:
    def test_prefers_empty_hash_slot(self):
        dist = ExplicitHashes(4, {1: [0, 1], 2: [1, 2], 3: [0, 2]})
        cache = PLruCache(4, dist=dist)
        cache.access(1)  # takes slot 0 (first of its hashes)
        cache.access(2)  # takes slot 1? slot 1 empty -> yes
        assert cache.slot_of(1) == 0
        assert cache.slot_of(2) == 1
        cache.access(3)  # hashes {0, 2}: slot 2 empty -> no eviction
        assert cache.slot_of(3) == 2
        assert len(cache) == 3

    def test_evicts_least_recently_accessed_among_hashes(self):
        dist = ExplicitHashes(3, {1: [0, 0], 2: [1, 1], 3: [0, 1]})
        cache = PLruCache(3, dist=dist)
        cache.access(1)  # slot 0 @ t1
        cache.access(2)  # slot 1 @ t2
        cache.access(1)  # slot 0 @ t3 (refresh)
        cache.access(3)  # hashes {0,1}: LRU among occupants is 2 (t2)
        assert cache.slot_of(3) == 1
        assert 2 not in cache.contents()
        assert 1 in cache.contents()

    def test_hit_refreshes_recency(self):
        dist = ExplicitHashes(2, {1: [0, 0], 2: [1, 1], 3: [0, 1]})
        cache = PLruCache(2, dist=dist)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # hit refresh
        cache.access(3)  # evicts 2, the least recently accessed of {1, 2}
        assert cache.contents() == {1, 3}

    def test_duplicate_hashes_fine(self):
        dist = ExplicitHashes(2, {5: [1, 1]})
        cache = PLruCache(2, dist=dist)
        cache.access(5)
        assert cache.slot_of(5) == 1


class TestEquivalences:
    def test_full_associativity_equals_lru(self):
        """d = n with all-slots hashes: P-LRU must replicate full LRU."""
        rng = np.random.Generator(np.random.PCG64(1))
        pages = rng.integers(0, 64, size=2000, dtype=np.int64)
        n = 8
        plru = PLruCache(n, dist=full_assoc_dist(n))
        lru = LRUCache(n)
        assert np.array_equal(plru.run(pages).hits, lru.run(pages).hits)

    def test_single_set_setassoc_equals_lru(self):
        rng = np.random.Generator(np.random.PCG64(2))
        pages = rng.integers(0, 50, size=1500, dtype=np.int64)
        n = 8
        plru = PLruCache(n, dist=SetAssociativeHashes(n, n, seed=1))
        lru = LRUCache(n)
        assert np.array_equal(plru.run(pages).hits, lru.run(pages).hits)

    def test_d1_is_direct_mapped(self):
        cache = PLruCache(16, d=1, seed=3)
        rng = np.random.Generator(np.random.PCG64(4))
        for p in rng.integers(0, 100, size=500).tolist():
            cache.access(int(p))
            pos = cache.slot_of(int(p))
            assert pos == cache.dist.positions(int(p))[0]


class TestSlottedMechanics:
    def test_capacity_dist_mismatch(self):
        with pytest.raises(ConfigurationError):
            PLruCache(16, dist=UniformHashes(8, 2))

    def test_page_always_in_own_hash_slots(self):
        cache = PLruCache(32, d=2, seed=5)
        rng = np.random.Generator(np.random.PCG64(6))
        for p in rng.integers(0, 200, size=2000).tolist():
            cache.access(int(p))
            assert cache.slot_of(int(p)) in cache.dist.positions(int(p))

    def test_eviction_counts_accumulate(self):
        cache = PLruCache(4, d=2, seed=7)
        for p in range(100):
            cache.access(p)
        counts = cache.eviction_counts()
        assert counts.sum() > 0
        assert counts.shape == (4,)

    def test_reset_keeps_hash_cache_but_clears_state(self):
        cache = PLruCache(8, d=2, seed=8)
        cache.access(1)
        pos_before = cache.dist.positions(1)
        cache.reset()
        assert len(cache) == 0
        assert cache.eviction_counts().sum() == 0
        cache.access(1)
        assert cache.slot_of(1) in pos_before

    def test_prefetch_equivalent_to_lazy(self):
        rng = np.random.Generator(np.random.PCG64(9))
        pages = rng.integers(0, 64, size=800, dtype=np.int64)
        eager = PLruCache(16, d=2, seed=10)
        eager.prefetch_hashes(pages)
        lazy = PLruCache(16, d=2, seed=10)
        assert np.array_equal(eager.run(pages).hits, lazy.run(pages).hits)

    def test_occupancy(self):
        cache = PLruCache(8, d=2, seed=11)
        assert cache.occupancy() == 0.0
        cache.access(1)
        assert cache.occupancy() == pytest.approx(1 / 8)

    def test_instrumentation_attached_to_result(self):
        cache = PLruCache(8, d=2, seed=12)
        result = cache.run(np.arange(50, dtype=np.int64))
        assert "slot_evictions" in result.extra
        assert result.extra["slot_evictions"].shape == (8,)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=150))
    @settings(max_examples=25)
    def test_property_occupancy_monotone_until_full(self, pages):
        """Distinct-page insertions never decrease occupancy."""
        cache = PLruCache(8, d=2, seed=13)
        prev = 0
        for p in pages:
            cache.access(p)
            now = len(cache)
            # a miss fills an empty slot (+1) or replaces 1-for-1 (+0)
            assert now >= prev
            prev = now
