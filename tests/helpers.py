"""Test utilities shared across modules.

- :func:`brute_force_min_misses` — exhaustive offline optimum for tiny
  instances, used to certify Belady;
- :func:`reference_policy_check` — a model-based step checker that
  validates any online policy's demand-paging invariants;
- :func:`all_online_policy_factories` — one factory per registered online
  policy, for cross-policy property tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

from repro.core.base import CachePolicy
from repro.core.registry import available_policies, make_policy


def brute_force_min_misses(pages: list[int], capacity: int) -> int:
    """Exhaustive minimum miss count (only for very small instances).

    State-space DP over (time, frozen cache contents); exponential, so keep
    ``len(pages) <= ~12`` and ``capacity <= 4``.
    """
    pages_t = tuple(pages)

    @lru_cache(maxsize=None)
    def best(i: int, cache: frozenset) -> int:
        if i == len(pages_t):
            return 0
        page = pages_t[i]
        if page in cache:
            return best(i + 1, cache)
        if len(cache) < capacity:
            return 1 + best(i + 1, cache | {page})
        return 1 + min(
            best(i + 1, (cache - {victim}) | {page}) for victim in cache
        )

    return best(0, frozenset())


def reference_policy_check(policy: CachePolicy, pages: np.ndarray) -> None:
    """Drive ``policy`` step by step, asserting demand-paging invariants.

    - access() returns True iff the page was resident beforehand;
    - after any access the page is resident;
    - occupancy never exceeds capacity;
    - len(policy) matches len(policy.contents()).
    """
    policy.reset()
    assert len(policy.contents()) == 0
    for page in pages.tolist():
        before = policy.contents()
        hit = policy.access(int(page))
        assert hit == (page in before), (
            f"{policy.name}: access({page}) returned {hit} but residency was "
            f"{page in before}"
        )
        after = policy.contents()
        assert page in after, f"{policy.name}: page {page} absent after access"
        assert len(after) <= policy.capacity, (
            f"{policy.name}: occupancy {len(after)} exceeds capacity {policy.capacity}"
        )
        assert len(policy) == len(after)


def all_online_policy_factories(capacity: int) -> dict[str, Callable[[], CachePolicy]]:
    """Factories for every registered *online* policy at a given capacity."""
    factories: dict[str, Callable[[], CachePolicy]] = {}
    for name in available_policies():
        probe = make_policy(name, capacity, **_extra_kwargs(name, capacity))
        if probe.is_offline:
            continue
        factories[name] = (
            lambda name=name, capacity=capacity: make_policy(
                name, capacity, **_extra_kwargs(name, capacity)
            )
        )
    return factories


def _extra_kwargs(name: str, capacity: int) -> dict:
    """Constructor kwargs needed for registry policies in small tests."""
    if name in {"random", "marking", "d-random", "2-random", "cuckoo", "rearrange"}:
        return {"seed": 11}
    if name in {"d-lru", "2-lru", "d-fifo", "skew-assoc"}:
        return {"seed": 11}
    if name == "set-assoc":
        # the hardware layout needs d | capacity; pick the largest power
        # of two (<= 8) that divides it so tiny capacities stay valid
        d = next(d for d in (8, 4, 2, 1) if capacity % d == 0)
        return {"d": d, "seed": 11}
    if name == "tree-plru":
        return {"ways": 4, "seed": 11}
    if name == "companion":
        return {"ways": 2, "companion_size": max(1, capacity // 4), "seed": 11}
    if name == "victim":
        return {"victim_size": max(1, capacity // 4), "seed": 11}
    if name in {"heatsink", "adaptive-heatsink", "sketch-heatsink"}:
        sink = max(2, capacity // 8)
        return {
            "bin_size": max(1, min(8, capacity - sink)),
            "sink_size": sink,
            "sink_prob": 0.1,
            "seed": 11,
        }
    return {}


def make_seeded_policy(name: str, capacity: int, seed: int) -> CachePolicy:
    """Registry policy with small-capacity kwargs and an explicit seed.

    Policies without a ``seed`` parameter are deterministic and are built
    without one; raises :class:`~repro.errors.ConfigurationError` when the
    configuration is invalid at this capacity (callers typically skip).
    """
    kwargs = dict(_extra_kwargs(name, capacity))
    kwargs["seed"] = seed
    try:
        return make_policy(name, capacity, **kwargs)
    except TypeError:  # deterministic policies take no seed
        kwargs.pop("seed")
        return make_policy(name, capacity, **kwargs)
