"""Tests for Hopcroft–Karp matching — against networkx and brute force."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphtools.matching import hopcroft_karp, maximum_matching_size


class TestHopcroftKarp:
    def test_trivial(self):
        size, ml, mr = hopcroft_karp(0, 0, [])
        assert size == 0

    def test_perfect_matching(self):
        size, ml, mr = hopcroft_karp(2, 2, [[0, 1], [0]])
        assert size == 2
        assert ml.tolist() == [1, 0]

    def test_augmenting_path_needed(self):
        # greedy left-to-right would match 0->a then 1 stuck; HK augments
        size, ml, mr = hopcroft_karp(2, 2, [[0], [0, 1]])
        assert size == 2

    def test_star(self):
        size, _, _ = hopcroft_karp(3, 1, [[0], [0], [0]])
        assert size == 1

    def test_matching_consistency(self):
        size, ml, mr = hopcroft_karp(4, 4, [[0, 1], [1, 2], [2, 3], [3, 0]])
        assert size == 4
        for u, v in enumerate(ml.tolist()):
            if v != -1:
                assert mr[v] == u

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hopcroft_karp(2, 2, [[0]])  # adjacency length mismatch
        with pytest.raises(ConfigurationError):
            hopcroft_karp(-1, 2, [])

    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=24),
    )
    @settings(max_examples=60)
    def test_property_matches_networkx(self, nl, nr, raw):
        import networkx as nx

        edges = sorted({(u % nl, v % nr) for u, v in raw})
        adjacency = [[] for _ in range(nl)]
        for u, v in edges:
            adjacency[u].append(v)
        size, ml, mr = hopcroft_karp(nl, nr, adjacency)

        g = nx.Graph()
        g.add_nodes_from((f"L{u}" for u in range(nl)))
        g.add_nodes_from((f"R{v}" for v in range(nr)))
        g.add_edges_from((f"L{u}", f"R{v}") for u, v in edges)
        expected = len(
            nx.bipartite.maximum_matching(g, top_nodes=[f"L{u}" for u in range(nl)])
        ) // 2
        assert size == expected
        # verify the matching itself
        used_r = set()
        count = 0
        for u, v in enumerate(ml.tolist()):
            if v == -1:
                continue
            assert v in adjacency[u]
            assert v not in used_r
            used_r.add(v)
            count += 1
        assert count == size


class TestMaximumMatchingSize:
    def test_with_hyperedge_rows(self):
        edges = np.array([[0, 1], [0, 0], [1, 1]])
        # 3 edges over 2 vertices: at most 2 assignable
        assert maximum_matching_size(2, edges) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            maximum_matching_size(2, np.array([[0, 5]]))
