"""Tests for repro.graphtools.unionfind."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphtools.unionfind import UnionFind


class TestBasics:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.num_components == 5
        for v in range(5):
            assert uf.find(v) == v
            assert uf.component_size(v) == 1
            assert uf.component_edges(v) == 0

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.add_edge(0, 1) is True
        assert uf.connected(0, 1)
        assert uf.num_components == 3
        assert uf.component_size(0) == 2
        assert uf.component_edges(1) == 1

    def test_cycle_edge(self):
        uf = UnionFind(3)
        uf.add_edge(0, 1)
        assert uf.add_edge(0, 1) is False  # parallel edge
        assert uf.component_edges(0) == 2
        assert uf.component_size(0) == 2

    def test_self_loop(self):
        uf = UnionFind(3)
        assert uf.add_edge(1, 1) is False
        assert uf.component_edges(1) == 1
        assert uf.component_size(1) == 1

    def test_orientability_criterion(self):
        uf = UnionFind(4)
        uf.add_edge(0, 1)
        uf.add_edge(1, 2)
        assert uf.component_is_orientable(0)  # tree: e=2, v=3
        uf.add_edge(0, 2)
        assert uf.component_is_orientable(0)  # unicyclic: e=3, v=3
        uf.add_edge(0, 1)
        assert not uf.component_is_orientable(0)  # e=4 > v=3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UnionFind(0)


class TestComponentTable:
    def test_table_totals(self):
        uf = UnionFind(10)
        edges = [(0, 1), (1, 2), (3, 4), (5, 5)]
        for u, v in edges:
            uf.add_edge(u, v)
        sizes, counts = uf.component_table()
        assert sizes.sum() == 10
        assert counts.sum() == len(edges)
        assert uf.num_components == len(sizes)

    @given(
        st.integers(2, 30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
    )
    @settings(max_examples=40)
    def test_property_matches_networkx(self, n, raw_edges):
        import networkx as nx

        edges = [(u % n, v % n) for u, v in raw_edges]
        uf = UnionFind(n)
        for u, v in edges:
            uf.add_edge(u, v)
        g = nx.MultiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        nx_components = list(nx.connected_components(g))
        assert uf.num_components == len(nx_components)
        for comp in nx_components:
            rep = next(iter(comp))
            assert uf.component_size(rep) == len(comp)
            assert uf.component_edges(rep) == g.subgraph(comp).number_of_edges()
            for other in comp:
                assert uf.connected(rep, other)
