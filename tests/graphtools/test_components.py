"""Tests for component-size analytics (Lemma 6 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphtools.components import (
    component_of_edge,
    component_size_tail,
    component_sizes,
)
from repro.graphtools.random_graph import (
    cuckoo_graph_from_pages,
    sample_random_multigraph,
)
from repro.rng import spawn_seeds


class TestComponentSizes:
    def test_known_graph(self):
        edges = np.array([[0, 1], [1, 2], [4, 5]])
        sizes = component_sizes(8, edges)
        assert sizes.tolist() == [3, 2]  # isolated vertices excluded

    def test_empty_edges(self):
        assert component_sizes(4, np.empty((0, 2), dtype=np.int64)).size == 0

    def test_self_loop_component(self):
        sizes = component_sizes(4, np.array([[2, 2]]))
        assert sizes.tolist() == [1]


class TestComponentOfEdge:
    def test_per_edge_view(self):
        edges = np.array([[0, 1], [1, 2], [4, 5]])
        per_edge = component_of_edge(8, edges)
        assert per_edge.tolist() == [3, 3, 2]

    def test_size_bias(self):
        """Edge-perspective sampling is size-biased: a big component
        contributes once per edge."""
        edges = np.array([[0, 1], [1, 2], [2, 3], [5, 6]])
        per_edge = component_of_edge(8, edges)
        assert (per_edge == 4).sum() == 3
        assert (per_edge == 2).sum() == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            component_of_edge(2, np.array([[0, 4]]))


class TestTail:
    def test_tail_shape_and_monotonicity(self):
        sizes = np.array([1, 2, 2, 3, 5])
        tail = component_size_tail(sizes, 6)
        assert tail.shape == (6,)
        assert tail[0] == 1.0  # every component has size >= 1
        assert np.all(np.diff(tail) <= 0)

    def test_exact_values(self):
        tail = component_size_tail(np.array([2, 4]), 4)
        assert tail.tolist() == [1.0, 1.0, 0.5, 0.5]

    def test_empty(self):
        assert component_size_tail(np.array([]), 3).tolist() == [0.0, 0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            component_size_tail(np.array([1]), 0)


class TestLemma6Shape:
    def test_tail_within_bound_at_lemma_load(self):
        """Pr[|C_x| >= i] <= 4^-(i-2) at load n/(4e^2), pooled trials."""
        n = 4096
        m = int(n / (4 * math.e**2))
        pooled = []
        for seed in spawn_seeds(17, 15):
            edges = sample_random_multigraph(n, m, seed=seed)
            pooled.append(component_of_edge(n, edges))
        tail = component_size_tail(np.concatenate(pooled), 8)
        for i in range(3, 9):
            assert tail[i - 1] <= 4.0 ** (-(i - 2)) * 1.5  # small sampling slack

    def test_mean_2_pow_c_bounded(self):
        """Lemma 8's key integral: E[2^|C|] = O(1) at the lemma load."""
        n = 4096
        m = int(n / (4 * math.e**2))
        pooled = []
        for seed in spawn_seeds(23, 15):
            edges = sample_random_multigraph(n, m, seed=seed)
            pooled.append(component_of_edge(n, edges))
        sizes = np.concatenate(pooled)
        assert float(np.mean(2.0 ** sizes)) < 20.0


class TestCuckooGraph:
    def test_edges_from_hashes(self):
        from repro.core.assoc.hashdist import UniformHashes

        dist = UniformHashes(32, 2, seed=1)
        pages = np.arange(10, dtype=np.int64)
        edges = cuckoo_graph_from_pages(pages, dist)
        assert edges.shape == (10, 2)
        expected = dist.positions_batch(pages)
        assert np.array_equal(edges, expected)

    def test_requires_d2(self):
        from repro.core.assoc.hashdist import UniformHashes

        with pytest.raises(ConfigurationError):
            cuckoo_graph_from_pages(np.arange(4), UniformHashes(32, 3, seed=1))


class TestSampling:
    def test_shape_and_range(self):
        edges = sample_random_multigraph(10, 25, seed=3)
        assert edges.shape == (25, 2)
        assert edges.min() >= 0 and edges.max() < 10

    def test_deterministic(self):
        a = sample_random_multigraph(10, 5, seed=4)
        b = sample_random_multigraph(10, 5, seed=4)
        assert np.array_equal(a, b)

    def test_zero_edges(self):
        assert sample_random_multigraph(5, 0, seed=1).shape == (0, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sample_random_multigraph(0, 1)
        with pytest.raises(ConfigurationError):
            sample_random_multigraph(5, -1)
