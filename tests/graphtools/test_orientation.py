"""Tests for 1-orientability (Lemma 5) — criterion, witness, Monte Carlo."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphtools.matching import maximum_matching_size
from repro.graphtools.orientation import (
    is_one_orientable,
    one_orientation,
    orientability_probability,
)
from repro.graphtools.random_graph import sample_random_multigraph


def random_instance(n_max=16, m_max=24):
    return st.tuples(st.integers(1, n_max), st.integers(0, m_max), st.integers(0, 10**6))


class TestCriterion:
    def test_empty_graph(self):
        assert is_one_orientable(3, np.empty((0, 2), dtype=np.int64))

    def test_tree(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert is_one_orientable(4, edges)

    def test_unicyclic(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        assert is_one_orientable(3, edges)

    def test_overloaded_component(self):
        edges = np.array([[0, 1], [0, 1], [1, 2], [2, 0]])
        assert not is_one_orientable(3, edges)

    def test_double_self_loop(self):
        assert is_one_orientable(2, np.array([[0, 0]]))
        assert not is_one_orientable(2, np.array([[0, 0], [0, 0]]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            is_one_orientable(2, np.array([[0, 5]]))
        with pytest.raises(ConfigurationError):
            is_one_orientable(2, np.array([0, 1]))

    @given(random_instance())
    @settings(max_examples=80)
    def test_property_equals_matching(self, params):
        """Union-find criterion must agree with Hopcroft–Karp exactly."""
        n, m, seed = params
        edges = sample_random_multigraph(n, m, seed=seed)
        assert is_one_orientable(n, edges) == (maximum_matching_size(n, edges) == m)


class TestWitness:
    @given(random_instance())
    @settings(max_examples=80)
    def test_property_witness_valid(self, params):
        n, m, seed = params
        edges = sample_random_multigraph(n, m, seed=seed)
        witness = one_orientation(n, edges)
        if witness is None:
            assert not is_one_orientable(n, edges)
        else:
            assert witness.shape == (m,)
            # each edge assigned one of its endpoints; all distinct
            for i in range(m):
                assert witness[i] in edges[i]
            assert len(set(witness.tolist())) == m

    def test_empty(self):
        assert one_orientation(2, np.empty((0, 2), dtype=np.int64)).size == 0

    def test_cycle_witness(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        w = one_orientation(3, edges)
        assert sorted(w.tolist()) == [0, 1, 2]

    def test_path_witness(self):
        edges = np.array([[0, 1], [1, 2]])
        w = one_orientation(3, edges)
        assert len(set(w.tolist())) == 2


class TestMonteCarlo:
    def test_supercritical_mostly_orientable(self):
        p = orientability_probability(512, 512 // 4, trials=60, seed=0)
        assert p >= 0.95

    def test_subcritical_mostly_not(self):
        # beta = 1.5 < 2: far above the orientability threshold load 1/2
        p = orientability_probability(512, int(512 / 1.5), trials=60, seed=0)
        assert p <= 0.2

    def test_reproducible(self):
        a = orientability_probability(128, 32, trials=30, seed=5)
        b = orientability_probability(128, 32, trials=30, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            orientability_probability(128, 32, trials=0)
