"""Tests for repro.sim.results — the results table."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.results import ResultsTable


class TestBuilding:
    def test_append_and_len(self):
        t = ResultsTable()
        t.append(a=1, b=2.0)
        t.append(a=3, c="x")
        assert len(t) == 2
        assert t.columns == ["a", "b", "c"]

    def test_init_from_rows(self):
        t = ResultsTable([{"x": 1}, {"x": 2}])
        assert len(t) == 2

    def test_extend(self):
        t = ResultsTable()
        t.extend([{"x": 1}, {"x": 2}])
        assert len(t) == 2

    def test_getitem_and_iter(self):
        t = ResultsTable([{"x": 1}, {"x": 2}])
        assert t[1] == {"x": 2}
        assert [r["x"] for r in t] == [1, 2]


class TestAccess:
    def test_numeric_column(self):
        t = ResultsTable([{"v": 1}, {"v": 2.5}])
        col = t.column("v")
        assert col.dtype == np.float64
        assert col.tolist() == [1.0, 2.5]

    def test_missing_values_object_dtype(self):
        t = ResultsTable([{"v": 1}, {"w": 2}])
        assert t.column("v").dtype == object

    def test_where(self):
        t = ResultsTable([{"v": 1}, {"v": 5}])
        assert len(t.where(lambda r: r["v"] > 2)) == 1

    def test_group_by(self):
        t = ResultsTable([{"g": "a", "v": 1}, {"g": "b", "v": 2}, {"g": "a", "v": 3}])
        groups = t.group_by("g")
        assert set(groups) == {("a",), ("b",)}
        assert len(groups[("a",)]) == 2


class TestRendering:
    def test_markdown_structure(self):
        t = ResultsTable([{"name": "x", "rate": 0.123456}])
        md = t.to_markdown()
        lines = md.splitlines()
        assert lines[0].startswith("| name")
        assert lines[1].startswith("|-")
        assert "0.1235" in lines[2]

    def test_markdown_empty(self):
        assert ResultsTable().to_markdown() == "(empty table)"

    def test_markdown_column_selection(self):
        t = ResultsTable([{"a": 1, "b": 2}])
        md = t.to_markdown(columns=["b"])
        assert "a" not in md.splitlines()[0]

    def test_float_formatting(self):
        t = ResultsTable([{"tiny": 1e-9, "nan": float("nan"), "big": 1e9}])
        md = t.to_markdown()
        assert "1.000e-09" in md
        assert "nan" in md
        assert "1.000e+09" in md


class TestCsv:
    def test_round_trip(self, tmp_path):
        t = ResultsTable([{"a": 1, "b": 2.5, "c": "x"}, {"a": 2, "b": 3.5, "c": "y"}])
        path = tmp_path / "t.csv"
        t.to_csv(path)
        back = ResultsTable.from_csv(path)
        assert len(back) == 2
        assert back[0] == {"a": 1, "b": 2.5, "c": "x"}

    def test_buffer_round_trip(self):
        t = ResultsTable([{"a": 1}])
        buf = io.StringIO()
        t.to_csv(buf)
        buf.seek(0)
        assert ResultsTable.from_csv(buf)[0] == {"a": 1}

    def test_ragged_rows(self, tmp_path):
        t = ResultsTable([{"a": 1}, {"b": 2}])
        path = tmp_path / "r.csv"
        t.to_csv(path)
        back = ResultsTable.from_csv(path)
        assert back[0]["a"] == 1
        assert back[0]["b"] is None

    def test_empty_write_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultsTable().to_csv(io.StringIO())
