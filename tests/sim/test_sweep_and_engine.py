"""Tests for repro.sim.engine, sweep, and parallel execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fully.fifo import FIFOCache
from repro.core.fully.lru import LRUCache
from repro.errors import ConfigurationError
from repro.sim.engine import compare_policies, run_policy
from repro.sim.parallel import default_workers, parallel_map
from repro.sim.sweep import ParameterGrid, run_sweep
from repro.traces.synthetic import zipf_trace


class TestRunPolicy:
    def test_row_fields(self):
        row = run_policy(LRUCache(16), zipf_trace(64, 2000, seed=1))
        assert row["policy"] == "LRU"
        assert row["capacity"] == 16
        assert row["accesses"] == 2000
        assert 0 <= row["miss_rate"] <= 1
        assert row["seconds"] > 0

    def test_miss_count_consistency(self):
        trace = zipf_trace(64, 2000, seed=2)
        row = run_policy(LRUCache(16), trace)
        assert row["misses"] == LRUCache(16).run(trace).num_misses


class TestComparePolicies:
    def test_one_row_per_policy(self):
        trace = zipf_trace(64, 2000, seed=3)
        table = compare_policies({"lru": LRUCache(16), "fifo": FIFOCache(16)}, trace)
        assert len(table) == 2
        labels = {row["label"] for row in table}
        assert labels == {"lru", "fifo"}

    def test_accepts_factories(self):
        trace = zipf_trace(64, 500, seed=4)
        table = compare_policies({"lru": lambda: LRUCache(8)}, trace)
        assert table[0]["policy"] == "LRU"


class TestParameterGrid:
    def test_product(self):
        grid = ParameterGrid(a=[1, 2], b=["x", "y", "z"])
        points = list(grid)
        assert len(grid) == 6
        assert {(p["a"], p["b"]) for p in points} == {
            (1, "x"), (1, "y"), (1, "z"), (2, "x"), (2, "y"), (2, "z")
        }

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParameterGrid()
        with pytest.raises(ConfigurationError):
            ParameterGrid(a=[])


def _task(params: dict, seed) -> dict:
    rng = np.random.Generator(np.random.PCG64(seed))
    return {"value": float(rng.random()) + params["offset"]}


class TestRunSweep:
    def test_rows_and_metadata(self):
        table = run_sweep(_task, ParameterGrid(offset=[0.0, 10.0]), repetitions=3, seed=1)
        assert len(table) == 6
        for row in table:
            assert "value" in row and "offset" in row and "rep" in row

    def test_deterministic(self):
        a = run_sweep(_task, ParameterGrid(offset=[0.0]), repetitions=4, seed=2)
        b = run_sweep(_task, ParameterGrid(offset=[0.0]), repetitions=4, seed=2)
        assert [r["value"] for r in a] == [r["value"] for r in b]

    def test_repetitions_independent(self):
        table = run_sweep(_task, ParameterGrid(offset=[0.0]), repetitions=5, seed=3)
        values = [r["value"] for r in table]
        assert len(set(values)) == 5

    def test_parallel_matches_serial(self):
        serial = run_sweep(_task, ParameterGrid(offset=[0.0, 1.0]), repetitions=2, seed=4)
        parallel = run_sweep(
            _task, ParameterGrid(offset=[0.0, 1.0]), repetitions=2, seed=4, workers=2
        )
        assert sorted(r["value"] for r in serial) == sorted(r["value"] for r in parallel)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_sweep(_task, ParameterGrid(offset=[1.0]), repetitions=0)
        with pytest.raises(ConfigurationError):
            run_sweep(_task, [], repetitions=1)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_serial_fallback(self):
        assert parallel_map(_square, [3], workers=4) == [9]
        assert parallel_map(_square, list(range(5)), workers=1) == [0, 1, 4, 9, 16]

    def test_order_preserved(self):
        out = parallel_map(_square, [5, 1, 3], workers=2)
        assert out == [25, 1, 9]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1], workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestWorkersEnvVar:
    def test_env_pins_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_absent_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1

    @pytest.mark.parametrize("bad", ["zero-ish", "", "2.5", "0", "-4"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ConfigurationError):
            default_workers()


class TestRunPolicyTraceSink:
    def test_trace_sink_captures_run_and_leaves_hooks_disabled(self):
        from repro.obs import hooks
        from repro.obs.sinks import ListSink

        trace = zipf_trace(128, 1000, alpha=1.0, seed=2)
        sink = ListSink()
        row = run_policy(LRUCache(32), trace, trace_sink=sink)
        assert hooks.ENABLED is False  # capture is scoped to the run
        accesses = [e for e in sink.events if e["ev"] == "access"]
        assert len(accesses) == row["accesses"] == 1000
        assert sum(not e["hit"] for e in accesses) == row["misses"]
        assert accesses[0]["i"] == 0  # clock reset at capture start

    def test_no_sink_means_no_capture(self):
        from repro.obs import hooks

        trace = zipf_trace(128, 200, alpha=1.0, seed=2)
        run_policy(LRUCache(32), trace)
        assert hooks.ENABLED is False
