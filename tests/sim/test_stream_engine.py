"""Streaming engine tests: chunk-stitched runs vs materialized runs.

The contract of :func:`repro.sim.engine.run_policy_stream` is that
feeding a stream chunk by chunk through ``policy.run(chunk, reset=False)``
is *bit-identical* to one materialized run: same hits, same post-run
policy state, same logical coin-stream position. This wall asserts all
three for every registered kernel over three workload regimes (hot:
working set fits; warm: Zipf around capacity; turnover: churn well past
capacity) and three seeds, with a chunk size that never divides the
trace length — every boundary is a mid-run continuation.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError
from repro.sim.engine import _prorated_split, compare_policies, run_policy, run_policy_stream
from repro.sim.kernels import available_kernels
from repro.sim.sweep import ParameterGrid, run_sweep
from repro.traces.streaming import ArrayTraceStream, ZipfTraceStream
from tests.sim.test_kernels import _assert_same_state, _future_coins

CAP = 256

#: one factory per registered kernel class (asserted exhaustive below)
KERNEL_POLICIES = {
    "HeatSinkLRU": lambda seed: repro.HeatSinkLRU.from_epsilon(CAP, 0.3, seed=seed),
    "PLruCache": lambda seed: repro.PLruCache(CAP, d=2, seed=seed),
    "SetAssociativeLRU": lambda seed: repro.SetAssociativeLRU(CAP, d=8, seed=seed),
    "DRandomCache": lambda seed: repro.DRandomCache(CAP, d=2, seed=seed),
}

#: length deliberately not a multiple of the chunk — boundaries mid-run
LENGTH = 6_000
CHUNK = 701

STREAMS = {
    "hot": lambda seed: ZipfTraceStream(CAP // 2, LENGTH, alpha=1.2, seed=seed, chunk=CHUNK),
    "warm": lambda seed: ZipfTraceStream(4 * CAP, LENGTH, alpha=0.8, seed=seed, chunk=CHUNK),
    "turnover": lambda seed: ZipfTraceStream(
        32 * CAP, LENGTH, alpha=0.4, seed=seed, chunk=CHUNK
    ),
}

SEEDS = [0, 1, 12345]


def test_kernel_policy_table_is_exhaustive():
    assert set(KERNEL_POLICIES) == set(available_kernels())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("regime", sorted(STREAMS))
@pytest.mark.parametrize("policy_name", sorted(KERNEL_POLICIES))
def test_stream_bit_identical_to_materialized(policy_name, regime, seed):
    stream = STREAMS[regime](seed)
    trace = stream.materialize()

    p_mat = KERNEL_POLICIES[policy_name](seed)
    whole = p_mat.run(trace, fast=True)

    p_str = KERNEL_POLICIES[policy_name](seed)
    row = run_policy_stream(p_str, stream, fast=True, keep_hits=True)

    np.testing.assert_array_equal(np.asarray(whole.hits), row["hits"])
    assert row["misses"] == whole.num_misses
    assert row["accesses"] == whole.num_accesses
    _assert_same_state(p_mat, p_str)
    np.testing.assert_array_equal(_future_coins(p_mat), _future_coins(p_str))


def test_prefetch_off_matches_prefetch_on():
    stream = STREAMS["warm"](7)
    a = run_policy_stream(KERNEL_POLICIES["HeatSinkLRU"](7), stream, prefetch=True)
    b = run_policy_stream(KERNEL_POLICIES["HeatSinkLRU"](7), stream, prefetch=False)
    assert a["misses"] == b["misses"]
    assert a["chunks"] == b["chunks"]


def test_reference_loop_stream_matches_kernel_stream():
    """Chunk stitching is a policy-level contract, not a kernel trick."""
    stream = ZipfTraceStream(2 * CAP, 2_000, alpha=1.0, seed=4, chunk=333)
    ker = run_policy_stream(KERNEL_POLICIES["PLruCache"](4), stream, fast=True, keep_hits=True)
    ref = run_policy_stream(KERNEL_POLICIES["PLruCache"](4), stream, fast=False, keep_hits=True)
    np.testing.assert_array_equal(ker["hits"], ref["hits"])


class TestRunPolicyDispatch:
    def test_stream_routes_to_streaming_engine(self):
        stream = STREAMS["warm"](2)
        row = run_policy(KERNEL_POLICIES["HeatSinkLRU"](2), stream)
        assert row["streamed"] is True
        assert row["chunks"] == -(-LENGTH // CHUNK)
        assert row["trace"] == "zipf"
        assert row["accesses"] == LENGTH

    def test_row_matches_materialized_run(self):
        stream = STREAMS["hot"](3)
        streamed = run_policy(KERNEL_POLICIES["DRandomCache"](3), stream)
        plain = run_policy(KERNEL_POLICIES["DRandomCache"](3), stream.materialize())
        assert streamed["misses"] == plain["misses"]
        assert streamed["miss_rate"] == plain["miss_rate"]

    def test_keep_hits_split_matches_exact(self):
        stream = STREAMS["warm"](5)
        row = run_policy_stream(
            KERNEL_POLICIES["SetAssociativeLRU"](5), stream, keep_hits=True
        )
        exact = run_policy(
            KERNEL_POLICIES["SetAssociativeLRU"](5), stream.materialize()
        )
        assert row["steady_miss_rate"] == pytest.approx(exact["steady_miss_rate"])
        assert row["warmup_miss_rate"] == pytest.approx(exact["warmup_miss_rate"])

    def test_prorated_split_close_to_exact(self):
        stream = STREAMS["warm"](6)
        row = run_policy_stream(KERNEL_POLICIES["HeatSinkLRU"](6), stream)
        exact = run_policy(KERNEL_POLICIES["HeatSinkLRU"](6), stream.materialize())
        # only the chunk straddling the cut is approximated
        assert row["steady_miss_rate"] == pytest.approx(
            exact["steady_miss_rate"], abs=0.02
        )

    def test_empty_stream(self):
        stream = ArrayTraceStream(np.empty(0, dtype=np.int64))
        row = run_policy_stream(KERNEL_POLICIES["HeatSinkLRU"](0), stream)
        assert row["accesses"] == 0
        assert np.isnan(row["miss_rate"])


class TestProratedSplit:
    def test_aligned_boundary_is_exact(self):
        # cut = 100 lands exactly on the first chunk boundary
        counts = [(100, 80), (100, 20), (100, 10), (100, 10)]
        warm, steady = _prorated_split(counts, 400, 0.25)
        assert warm == pytest.approx(0.8)
        assert steady == pytest.approx(40 / 300)

    def test_straddling_chunk_prorated(self):
        counts = [(100, 50)]
        warm, steady = _prorated_split(counts, 100, 0.5)
        assert warm == pytest.approx(0.5)
        assert steady == pytest.approx(0.5)

    def test_zero_warmup(self):
        warm, steady = _prorated_split([(10, 5)], 10, 0.0)
        assert np.isnan(warm)
        assert steady == pytest.approx(0.5)

    def test_empty(self):
        warm, steady = _prorated_split([], 0, 0.25)
        assert np.isnan(warm) and np.isnan(steady)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            _prorated_split([(10, 5)], 10, 1.0)


# -- streamed sweeps -----------------------------------------------------------


def _sweep_task(params: dict, seed, stream) -> dict:
    policy = repro.HeatSinkLRU.from_epsilon(params["capacity"], 0.3, seed=123)
    return run_policy(policy, stream, fast=True)


class TestStreamedSweep:
    GRID = ParameterGrid(capacity=[64, 256])

    def _misses(self, table):
        return sorted((r["capacity"], r["misses"]) for r in table)

    def test_serial_stream_sweep(self):
        stream = ZipfTraceStream(512, 3_000, alpha=1.0, seed=9, chunk=500)
        table = run_sweep(_sweep_task, self.GRID, seed=0, trace=stream)
        assert len(table) == 2
        assert all(row["streamed"] for row in table)

    def test_pool_matches_serial_cheap_pickle(self):
        # synthetic stream: pickles as parameters, shipped straight to workers
        stream = ZipfTraceStream(512, 3_000, alpha=1.0, seed=9, chunk=500)
        serial = run_sweep(_sweep_task, self.GRID, seed=0, trace=stream)
        pooled = run_sweep(_sweep_task, self.GRID, seed=0, trace=stream, workers=2)
        assert self._misses(serial) == self._misses(pooled)

    def test_pool_matches_serial_shared_ring(self):
        # in-memory stream: crosses the pool boundary via shared-memory segments
        stream = ArrayTraceStream(
            repro.zipf_trace(512, 3_000, alpha=1.0, seed=9).pages, chunk=500
        )
        assert not stream.cheap_pickle
        serial = run_sweep(_sweep_task, self.GRID, seed=0, trace=stream)
        pooled = run_sweep(_sweep_task, self.GRID, seed=0, trace=stream, workers=2)
        assert self._misses(serial) == self._misses(pooled)


def test_compare_policies_accepts_stream():
    stream = ZipfTraceStream(512, 2_000, alpha=1.0, seed=1, chunk=300)
    table = compare_policies(
        {
            "heatsink": KERNEL_POLICIES["HeatSinkLRU"](0),
            "2-lru": KERNEL_POLICIES["PLruCache"](0),
        },
        stream,
    )
    assert len(table) == 2
    assert all(row["streamed"] and row["accesses"] == 2_000 for row in table)
