"""Shared-memory trace passing: handles, lifecycle, and sweep integration.

The contract: a sweep over one fixed trace serializes the trace *zero*
times — task tuples carry a :class:`SharedArrayHandle` that pickles to a
few dozen bytes, and workers attach to the POSIX segment once per
process. Results must be identical to the serial path (which passes the
array directly, no shared memory involved).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

import repro
from repro.sim.parallel import (
    SharedArrayHandle,
    share_array,
    shared_trace,
    unlink_shared,
)
from repro.sim.sweep import ParameterGrid, run_sweep


def test_share_array_roundtrip():
    arr = np.arange(10_000, dtype=np.int64)
    handle = share_array(arr)
    try:
        view = handle.array()
        np.testing.assert_array_equal(view, arr)
        assert not view.flags.writeable
    finally:
        unlink_shared(handle)


def test_handle_pickles_tiny():
    """The whole point: the pickle payload must not scale with the array."""
    arr = np.arange(1_000_000, dtype=np.int64)  # 8 MB
    handle = share_array(arr)
    try:
        assert len(pickle.dumps(handle)) < 200
    finally:
        unlink_shared(handle)


def test_unlink_is_idempotent_and_releases_segment():
    handle = share_array(np.arange(16, dtype=np.int64))
    unlink_shared(handle)
    unlink_shared(handle)  # second call is a no-op
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=handle.name)


def test_shared_trace_scopes_segment():
    trace = repro.zipf_trace(64, 500, alpha=0.9, seed=0)
    with shared_trace(trace) as handle:
        assert isinstance(handle, SharedArrayHandle)
        np.testing.assert_array_equal(handle.array(), np.asarray(trace.pages))
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=handle.name)


# -- sweep integration ---------------------------------------------------------

_TRACE = repro.zipf_trace(256, 3_000, alpha=0.8, seed=42)


def _miss_rate_task(params, seed, pages):
    """Module-level (picklable) task using the shared trace."""
    policy = repro.PLruCache(params["capacity"], d=params["d"], seed=seed)
    result = policy.run(pages)
    return {"miss_rate": result.miss_rate, "pages_seen": int(pages.size)}


@pytest.mark.parametrize("workers", [1, 2])
def test_run_sweep_with_trace(workers):
    grid = ParameterGrid(capacity=[32, 64], d=[2, 4])
    table = run_sweep(
        _miss_rate_task, grid, repetitions=2, seed=9, workers=workers, trace=_TRACE
    )
    rows = list(table)
    assert len(rows) == len(grid) * 2
    assert all(row["pages_seen"] == 3_000 for row in rows)


def test_parallel_sweep_identical_to_serial():
    grid = ParameterGrid(capacity=[32, 64, 128], d=[2, 4])
    serial = run_sweep(
        _miss_rate_task, grid, repetitions=2, seed=9, workers=1, trace=_TRACE
    )
    pooled = run_sweep(
        _miss_rate_task, grid, repetitions=2, seed=9, workers=2, trace=_TRACE
    )

    def key(row):
        return (row["capacity"], row["d"], row["rep"])

    serial_rows = sorted(serial, key=key)
    pooled_rows = sorted(pooled, key=key)
    assert serial_rows == pooled_rows


def test_sweep_without_trace_still_works():
    """The legacy two-argument task signature is untouched."""

    def task(params, seed):
        return {"value": params["x"] * 2}

    table = run_sweep(task, ParameterGrid(x=[1, 2, 3]), seed=0)
    assert [row["value"] for row in table] == [2, 4, 6]
