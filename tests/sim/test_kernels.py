"""Differential tests: fast kernels vs the reference per-access loops.

The fast path's contract (see ``CachePolicy.run`` and
``docs/performance.md``) is *bit-for-bit equivalence*: same policy, same
seed, same trace ⇒ identical ``SimResult.hits``, identical
instrumentation, identical post-run policy state. Every kernelized
policy is checked against the reference loop over three trace families
(the Theorem-2 adversarial sequence, Zipf, and phase-change) and three
seeds, plus ``reset=False`` continuations that interleave the two paths
in every order.

Coin-consuming policies buffer pre-drawn uniforms; the kernel draws in
larger chunks than the reference, so the *raw* buffers may differ in
length after a run while the logical stream position is identical. The
stream tests therefore compare "unconsumed tail + future generator
output", which is the observable that matters.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import SimulationError
from repro.obs import hooks
from repro.obs.sinks import ListSink
from repro.sim.kernels import available_kernels, kernel_for

CAP = 256

POLICIES = {
    "heatsink": lambda seed: repro.HeatSinkLRU.from_epsilon(CAP, 0.3, seed=seed),
    "heatsink-heavy-sink": lambda seed: repro.HeatSinkLRU(
        CAP, bin_size=4, sink_size=64, sink_prob=0.4, seed=seed
    ),
    "2-lru": lambda seed: repro.PLruCache(CAP, d=2, seed=seed),
    "8-lru": lambda seed: repro.PLruCache(CAP, d=8, seed=seed),
    "set-assoc": lambda seed: repro.SetAssociativeLRU(CAP, d=8, seed=seed),
    "2-random": lambda seed: repro.DRandomCache(CAP, d=2, seed=seed),
    "4-random-aware": lambda seed: repro.DRandomCache(
        CAP, d=4, seed=seed, occupancy_aware=True
    ),
}

TRACES = {
    "adversarial": lambda: repro.build_theorem2_sequence(CAP, rounds=20, seed=7).trace,
    "zipf": lambda: repro.zipf_trace(4 * CAP, 5_000, alpha=0.8, seed=7),
    "phase": lambda: repro.phase_change_trace(CAP // 2, 1_000, 5, overlap=0.3, seed=7),
}

SEEDS = [0, 1, 12345]


def _state(policy):
    """Deep-ish snapshot of observable policy state after a run."""
    snap = {"contents": policy.contents(), "extra": None}
    if hasattr(policy, "_instrumentation"):
        snap["extra"] = policy._instrumentation()
    if hasattr(policy, "_slot_page"):  # slotted family
        snap["slots"] = (
            list(policy._slot_page),
            list(policy._slot_time),
            list(policy._slot_birth),
            list(policy._evictions),
            dict(policy._pos_of),
            policy._clock,
        )
    if hasattr(policy, "_bins"):  # heat-sink family
        snap["bins"] = [dict(b) for b in policy._bins]
        snap["sink"] = policy._sink_pages.tolist()
        snap["loc"] = dict(policy._loc)
    return snap


def _assert_same_result(ref, ker):
    np.testing.assert_array_equal(ref.hits, ker.hits)
    assert ref.policy == ker.policy
    assert set(ref.extra) == set(ker.extra)
    for key in ref.extra:
        a, b = ref.extra[key], ker.extra[key]
        if isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b)
        else:
            assert a == b, key


def _assert_same_state(p_ref, p_ker):
    ref, ker = _state(p_ref), _state(p_ker)
    assert ref["contents"] == ker["contents"]
    if ref["extra"] is not None:
        for key in ref["extra"]:
            a, b = ref["extra"][key], ker["extra"][key]
            if isinstance(a, np.ndarray):
                np.testing.assert_array_equal(a, b)
            else:
                assert a == b, key
    for key in ("slots", "bins", "sink", "loc"):
        if key in ref:
            assert ref[key] == ker[key], key


def _future_coins(policy, total=200_000):
    """First *total* values of "unconsumed buffer tail + generator output".

    The invariant the kernels guarantee: this combined stream is
    identical whichever path ran. The *raw* buffers may legitimately
    differ in length (the kernel draws bigger chunks), so the comparison
    must be over a fixed-length prefix of the logical stream, not the
    buffers themselves.
    """
    import copy

    if hasattr(policy, "_uniform_buf"):  # heat-sink
        tail = np.asarray(policy._uniform_buf)[policy._uniform_idx :]
    elif hasattr(policy, "_coin_buf"):  # d-random
        tail = np.asarray(policy._coin_buf, dtype=np.float64)[policy._coin_idx :]
    else:
        return np.empty(0)
    rng = copy.deepcopy(policy._rng)
    return np.concatenate([tail, rng.random(total - tail.size)])


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_kernel_bit_for_bit(policy_name, trace_name, seed):
    trace = TRACES[trace_name]()
    p_ref = POLICIES[policy_name](seed)
    p_ker = POLICIES[policy_name](seed)
    assert kernel_for(p_ker) is not None, "policy should have a kernel"

    ref = p_ref.run(trace, fast=False)
    ker = p_ker.run(trace, fast=True)

    _assert_same_result(ref, ker)
    _assert_same_state(p_ref, p_ker)
    np.testing.assert_array_equal(_future_coins(p_ref), _future_coins(p_ker))


@pytest.mark.parametrize("order", ["kernel,kernel", "kernel,ref", "ref,kernel"])
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_continuation_matches(policy_name, order):
    """reset=False continuations agree regardless of which path ran each half."""
    trace = TRACES["zipf"]()
    pages = np.asarray(trace.pages)
    half = pages.size // 2
    fasts = [part == "kernel" for part in order.split(",")]

    p_ref = POLICIES[policy_name](3)
    whole = p_ref.run(pages, fast=False)

    p_mix = POLICIES[policy_name](3)
    first = p_mix.run(pages[:half], fast=fasts[0])
    second = p_mix.run(pages[half:], reset=False, fast=fasts[1])

    np.testing.assert_array_equal(
        whole.hits, np.concatenate([first.hits, second.hits])
    )
    _assert_same_state(p_ref, p_mix)
    np.testing.assert_array_equal(_future_coins(p_ref), _future_coins(p_mix))


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_sparse_page_ids_use_remap(policy_name):
    """Huge page ids force the token-space remap branch; equality must hold."""
    rng = np.random.default_rng(11)
    pages = rng.integers(0, 2**48, size=4_000, dtype=np.int64)
    pages = pages[np.argsort(rng.random(pages.size))]
    # narrow the working set so there are actual hits
    pages = np.concatenate([pages[:200]] * 20)

    p_ref = POLICIES[policy_name](5)
    p_ker = POLICIES[policy_name](5)
    ref = p_ref.run(pages, fast=False)
    ker = p_ker.run(pages, fast=True)
    _assert_same_result(ref, ker)
    _assert_same_state(p_ref, p_ker)


def test_auto_dispatch_equals_forced_kernel():
    trace = TRACES["zipf"]()
    auto = POLICIES["heatsink"](1).run(trace)  # fast=None picks the kernel
    forced = POLICIES["heatsink"](1).run(trace, fast=True)
    np.testing.assert_array_equal(auto.hits, forced.hits)


def test_empty_trace_ok():
    p = POLICIES["heatsink"](0)
    result = p.run(np.empty(0, dtype=np.int64), fast=True)
    assert result.num_accesses == 0


# -- dispatch eligibility ------------------------------------------------------


def test_fast_true_without_kernel_raises():
    with pytest.raises(SimulationError):
        repro.LRUCache(CAP).run(TRACES["zipf"](), fast=True)


def test_fast_true_with_hooks_enabled_raises():
    p = POLICIES["heatsink"](0)
    with hooks.capturing(ListSink()):
        with pytest.raises(SimulationError):
            p.run(TRACES["zipf"](), fast=True)


def test_hooks_enabled_falls_back_to_reference():
    """Auto dispatch must not silently skip observability events."""
    trace = repro.zipf_trace(2 * CAP, 500, alpha=0.8, seed=3)
    p = POLICIES["heatsink"](0)
    with hooks.capturing(ListSink()) as sink:
        p.run(trace)  # fast=None: hooks enabled -> reference loop
    assert len(sink.events) > 0


def test_subclasses_do_not_inherit_kernels():
    p = repro.AdaptiveHeatSinkLRU.from_epsilon(CAP, 0.3, seed=0)
    assert kernel_for(p) is None


def test_recorder_vetoes_heatsink_kernel():
    p = POLICIES["heatsink"](0)
    p.attach_recorder([])
    assert kernel_for(p) is None


def test_lru_sink_vetoes_heatsink_kernel():
    p = repro.HeatSinkLRU(
        CAP, bin_size=8, sink_size=32, sink_prob=0.1, sink_policy="lru", seed=0
    )
    assert kernel_for(p) is None


def test_explicit_hashes_veto_slotted_kernels():
    table = {pg: (pg % 4, (pg + 1) % 4) for pg in range(16)}
    p = repro.PLruCache(4, dist=repro.ExplicitHashes(4, table))
    assert kernel_for(p) is None
    # and the reference loop still serves it fine
    result = p.run(np.arange(16, dtype=np.int64))
    assert result.num_accesses == 16


def test_available_kernels_lists_all_four():
    table = available_kernels()
    assert set(table) == {
        "HeatSinkLRU",
        "PLruCache",
        "SetAssociativeLRU",
        "DRandomCache",
    }


# -- KernelUnavailable: the loud fast=True failure mode ------------------------


class TestKernelUnavailable:
    def test_is_a_simulation_error(self):
        assert issubclass(repro.KernelUnavailable, SimulationError)

    def test_error_names_the_policy(self):
        """The message must say WHICH policy had no kernel and point at the
        fast=None fallback — the debugging breadcrumb the exception exists
        to provide."""
        p = repro.LRUCache(CAP)
        with pytest.raises(repro.KernelUnavailable) as excinfo:
            p.run(TRACES["zipf"](), fast=True)
        message = str(excinfo.value)
        assert p.name in message
        assert "LRUCache" in message
        assert "fast=None" in message

    def test_sketch_heatsink_does_not_inherit_parent_kernel(self):
        """Subclassing HeatSinkLRU must NOT pick up its kernel: the hybrid
        overrides routing, so the parent kernel would silently compute the
        wrong thing. Exact-type dispatch is the guard."""
        p = repro.SketchHeatSinkLRU(
            CAP, bin_size=8, sink_size=32, sink_prob=0.1, seed=0
        )
        assert kernel_for(p) is None
        with pytest.raises(repro.KernelUnavailable) as excinfo:
            p.run(TRACES["zipf"](), fast=True)
        assert "SketchHeatSinkLRU" in str(excinfo.value)

    def test_fast_none_falls_back_and_matches_reference(self):
        """Auto dispatch on a kernel-less policy = the reference loop."""
        trace = TRACES["zipf"]()
        auto = repro.SketchHeatSinkLRU(
            CAP, bin_size=8, sink_size=32, sink_prob=0.1, seed=4
        ).run(trace)  # fast=None
        ref = repro.SketchHeatSinkLRU(
            CAP, bin_size=8, sink_size=32, sink_prob=0.1, seed=4
        ).run(trace, fast=False)
        assert np.array_equal(auto.hits, ref.hits)
