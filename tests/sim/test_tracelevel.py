"""Property tests for the trace-level scan engine (`repro.sim.kernels.tracelevel`).

The per-access differential wall (``test_kernels.py``) already proves the
registered adaptive kernels bit-equal to the reference loops at the
production knob settings — where most test-sized traces never leave the
per-access path. These tests shrink the module-level knobs (``PROBE``,
``MIN_TRACE``, ``CHUNK``, ``BAIL_FRAC``, ``MISS_THRESHOLD`` are read at
call time, by design) so that *small* traces exercise the probe, the
chunked residency scan, the victim re-arm heap, the bail-out, and the
per-access stitch — then assert the same contract: identical miss
positions, identical instrumentation, identical exported policy state,
and an identical logical future-coin stream.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.sim.kernels import tracelevel as tl
from tests.sim.test_kernels import (
    _assert_same_result,
    _assert_same_state,
    _future_coins,
)

CAP = 64

POLICIES = {
    "heatsink": lambda seed: repro.HeatSinkLRU.from_epsilon(CAP, 0.3, seed=seed),
    "2-lru": lambda seed: repro.PLruCache(CAP, d=2, seed=seed),
    "set-assoc": lambda seed: repro.SetAssociativeLRU(CAP, d=8, seed=seed),
    "2-random": lambda seed: repro.DRandomCache(CAP, d=2, seed=seed),
    "4-random-aware": lambda seed: repro.DRandomCache(
        CAP, d=4, seed=seed, occupancy_aware=True
    ),
}

SCANS = {
    "heatsink": tl.scan_heatsink,
    "2-lru": tl.scan_plru,
    "set-assoc": tl.scan_plru,
    "2-random": tl.scan_drandom,
    "4-random-aware": tl.scan_drandom,
}


@contextlib.contextmanager
def knobs(**overrides):
    """Temporarily rebind tracelevel's module-level tuning knobs.

    A plain context manager rather than ``monkeypatch`` so hypothesis
    ``@given`` bodies can shrink the knobs per example without tripping
    the function-scoped-fixture health check.
    """
    saved = {name: getattr(tl, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(tl, name, value)
        yield
    finally:
        for name, value in saved.items():
            setattr(tl, name, value)


def _assert_equivalent(ref_result, ker_result, p_ref, p_ker):
    np.testing.assert_array_equal(
        np.flatnonzero(~ref_result.hits), np.flatnonzero(~ker_result.hits)
    )
    _assert_same_result(ref_result, ker_result)
    _assert_same_state(p_ref, p_ker)
    np.testing.assert_array_equal(_future_coins(p_ref), _future_coins(p_ker))


@st.composite
def page_arrays(draw):
    """Random traces spanning hit-heavy to pure-turnover regimes."""
    universe = draw(st.integers(min_value=4, max_value=3 * CAP))
    length = draw(st.integers(min_value=130, max_value=400))
    pages = draw(
        st.lists(
            st.integers(min_value=0, max_value=universe - 1),
            min_size=length,
            max_size=length,
        )
    )
    return np.asarray(pages, dtype=np.int64)


class TestScanProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        policy_name=st.sampled_from(sorted(POLICIES)),
        seed=st.integers(min_value=0, max_value=2**16),
        pages=page_arrays(),
        probe=st.sampled_from([16, 64]),
        chunk=st.sampled_from([16, 64]),
        bail_frac=st.sampled_from([0.02, 0.3, 1.5]),
        miss_threshold=st.sampled_from([0.0, 0.2, 1.0]),
    )
    def test_adaptive_matches_reference_under_any_knobs(
        self, policy_name, seed, pages, probe, chunk, bail_frac, miss_threshold
    ):
        """Whatever route the driver takes — per-access veto, full scan,
        immediate or mid-trace bail — the result is bit-equal."""
        p_ref = POLICIES[policy_name](seed)
        p_ker = POLICIES[policy_name](seed)
        ref = p_ref.run(pages, fast=False)
        with knobs(
            PROBE=probe,
            MIN_TRACE=2 * probe,
            CHUNK=chunk,
            BAIL_FRAC=bail_frac,
            MISS_THRESHOLD=miss_threshold,
        ):
            ker = p_ker.run(pages, fast=True)
        _assert_equivalent(ref, ker, p_ref, p_ker)

    @settings(max_examples=10, deadline=None)
    @given(
        policy_name=st.sampled_from(sorted(POLICIES)),
        seed=st.integers(min_value=0, max_value=2**16),
        pages=page_arrays(),
        split_frac=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_continuations_stitch_across_paths(
        self, policy_name, seed, pages, split_frac
    ):
        """A scan half followed by a reference ``reset=False`` half (and
        vice versa) equals one whole reference run."""
        split = max(1, int(split_frac * pages.size))
        p_ref = POLICIES[policy_name](seed)
        whole = p_ref.run(pages, fast=False)
        p_mix = POLICIES[policy_name](seed)
        with knobs(PROBE=16, MIN_TRACE=32, CHUNK=32, MISS_THRESHOLD=1.0):
            first = p_mix.run(pages[:split], fast=True)
            second = p_mix.run(pages[split:], reset=False, fast=False)
        np.testing.assert_array_equal(
            whole.hits, np.concatenate([first.hits, second.hits])
        )
        _assert_same_state(p_ref, p_mix)
        np.testing.assert_array_equal(_future_coins(p_ref), _future_coins(p_mix))


class TestBailOut:
    """The bail-out path: a scan that stops mid-trace must hand back
    exact state so a per-access continuation completes the run."""

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_scan_bails_on_turnover_burst_with_exact_state(self, policy_name):
        # hit-heavy prefix (resident working set) then a burst of fresh
        # pages: the chunks inside the burst exceed any sane candidate
        # budget, so the scan must stop strictly inside the trace
        hot = repro.zipf_trace(CAP // 2, 512, alpha=1.0, seed=3)
        hot_pages = np.asarray(hot.pages)
        burst = np.arange(10_000, 10_256, dtype=np.int64)
        pages = np.concatenate([hot_pages, burst])

        p_ker = POLICIES[policy_name](7)
        p_ref = POLICIES[policy_name](7)
        p_ker.run(hot_pages, fast=False)
        p_ref.run(hot_pages, fast=False)

        with knobs(CHUNK=64, BAIL_FRAC=0.25):
            hits, consumed = SCANS[policy_name](p_ker, pages)
        assert 0 < consumed < pages.size, "burst should trigger a mid-trace bail"

        rest = p_ker.run(pages[consumed:], reset=False, fast=False)
        ref = p_ref.run(pages, reset=False, fast=False)
        np.testing.assert_array_equal(ref.hits, np.concatenate([hits, rest.hits]))
        _assert_same_state(p_ref, p_ker)
        np.testing.assert_array_equal(_future_coins(p_ref), _future_coins(p_ker))

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_zero_budget_scan_consumes_nothing_and_changes_nothing(self, policy_name):
        """``BAIL_FRAC=0`` refuses the first chunk containing any miss —
        the degenerate bail must leave the policy untouched."""
        pages = np.arange(200, dtype=np.int64)  # cold trace: all misses
        p_ker = POLICIES[policy_name](5)
        p_ref = POLICIES[policy_name](5)
        with knobs(CHUNK=32, BAIL_FRAC=0.0):
            hits, consumed = SCANS[policy_name](p_ker, pages)
        assert consumed == 0 and hits.size == 0
        _assert_same_state(p_ref, p_ker)
        np.testing.assert_array_equal(_future_coins(p_ref), _future_coins(p_ker))


class TestAdaptiveRouting:
    def test_short_traces_bypass_the_probe(self):
        """Below ``MIN_TRACE`` the driver is exactly the per-access kernel."""
        trace = repro.zipf_trace(CAP, 2_000, alpha=1.0, seed=2)
        assert len(trace) < tl.MIN_TRACE
        p_ref = POLICIES["heatsink"](1)
        p_ker = POLICIES["heatsink"](1)
        ref = p_ref.run(trace, fast=False)
        ker = p_ker.run(trace, fast=True)
        _assert_equivalent(ref, ker, p_ref, p_ker)

    def test_miss_heavy_probe_vetoes_the_scan(self):
        """Above ``MISS_THRESHOLD`` the remainder runs per-access — still
        bit-equal, just never entering the scan."""
        pages = np.arange(4_000, dtype=np.int64)  # 100% turnover
        p_ref = POLICIES["2-lru"](4)
        p_ker = POLICIES["2-lru"](4)
        ref = p_ref.run(pages, fast=False)
        with knobs(PROBE=64, MIN_TRACE=128, MISS_THRESHOLD=0.15):
            ker = p_ker.run(pages, fast=True)
        _assert_equivalent(ref, ker, p_ref, p_ker)

    def test_registered_kernels_are_the_adaptive_ones(self):
        from repro.sim.kernels import kernel_for

        for policy_name, expected in [
            ("heatsink", "heatsink-v2"),
            ("2-lru", "plru-v2"),
            ("set-assoc", "plru-v2"),
            ("2-random", "drandom-v2"),
        ]:
            kernel = kernel_for(POLICIES[policy_name](0))
            assert kernel is not None and kernel.name == expected
