"""Distributed tracing across the cluster: every request, one tree.

The acceptance bar for the telemetry plane: a traced client request
must stitch into a single client → router → worker span tree with no
orphans, in both framings, in-process and across real spawned worker
processes (separate span file per process).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import tracing
from repro.obs.sinks import ListSink
from repro.obs.spans import read_spans, stitch, summarize
from repro.service.client import ServiceClient

from tests.cluster.util import running_tier

DATA_OPS = {"GET", "PUT", "DEL", "MGET", "MPUT"}


def run(coro):
    return asyncio.run(coro)


def assert_clean_trees(spans):
    trees = stitch(spans)
    assert trees["orphans"] == [], f"orphaned spans: {trees['orphans'][:3]}"
    assert trees["multi_root"] == []
    return trees


def data_roots(trees):
    return {
        tid: root
        for tid, root in trees["roots"].items()
        if root["name"] == "client.request" and root.get("op") in DATA_OPS
    }


class TestInProcessTier:
    """Workers in this event loop: one shared sink catches all three tiers."""

    def traced_workout(self, frame):
        async def scenario(sink):
            with tracing.recording(sink, service="test", seed=3):
                async with running_tier(workers=2, capacity=64) as tier:
                    async with await ServiceClient.connect(
                        "127.0.0.1", tier.port, frame=frame
                    ) as c:
                        await c.put(1, "a")
                        await c.get(1)
                        await c.get(999)
                        await c.mput([2, 3, 4], ["x", "y", "z"])
                        await c.mget([1, 2, 3, 4])
                        await c.delete(2)
                        assert await c.ping() is True

        sink = ListSink()
        run(scenario(sink))
        return [e for e in sink.events if e.get("ev") == "span"]

    @pytest.mark.parametrize("frame", ["ndjson", "binary"])
    def test_every_data_op_stitches_through_all_tiers(self, frame):
        spans = self.traced_workout(frame)
        trees = assert_clean_trees(spans)
        roots = data_roots(trees)
        assert len(roots) >= 6  # put, get x2, mput, mget, del
        for tid in roots:
            names = {s["name"] for s in trees["traces"][tid]}
            assert {"client.request", "router.request", "server.request"} <= names, (
                f"incomplete tree for {roots[tid]['op']}: {sorted(names)}"
            )

    def test_router_spans_decompose_the_request(self, frame="binary"):
        spans = self.traced_workout(frame)
        trees = assert_clean_trees(spans)
        by_parent = {}
        for s in spans:
            if "parent" in s:
                by_parent.setdefault(s["parent"], []).append(s)
        for tid, root in data_roots(trees).items():
            (router,) = [
                s for s in by_parent.get(root["span"], ())
                if s["name"] == "router.request"
            ]
            child_names = {s["name"] for s in by_parent.get(router["span"], ())}
            assert "router.queue" in child_names
            assert "router.link" in child_names

    def test_link_spans_carry_the_owner_node(self):
        spans = self.traced_workout("binary")
        links = [s for s in spans if s["name"] == "router.link"]
        assert links
        assert all(s.get("node", "").startswith("w") for s in links)

    def test_multi_owner_batch_fans_out_links(self):
        async def scenario(sink):
            with tracing.recording(sink, service="test", seed=3):
                async with running_tier(workers=3, capacity=90) as tier:
                    async with await ServiceClient.connect(
                        "127.0.0.1", tier.port
                    ) as c:
                        # 30 keys spread over 3 owners: one MGET, many links
                        keys = list(range(30))
                        await c.mput(keys, [str(k) for k in keys])
                        await c.mget(keys)

        sink = ListSink()
        run(scenario(sink))
        trees = assert_clean_trees(sink.events)
        mgets = [r for r in data_roots(trees).values() if r["op"] == "MGET"]
        assert mgets
        (mget_root,) = mgets
        members = trees["traces"][mget_root["trace"]]
        links = [s for s in members if s["name"] == "router.link"]
        assert len(links) >= 2  # split across owners
        assert len({s["node"] for s in links}) == len(links)

    def test_untraced_client_stays_invisible(self):
        """The router joins traces, never roots them: no client context
        in means no spans out, for every tier."""

        async def scenario(sink):
            async with running_tier(workers=2) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.put(1, "a")
                    await c.get(1)
                # trace only *after* the untraced traffic, to prove the
                # earlier requests really emitted nothing
                with tracing.recording(sink, service="late", seed=1):
                    pass

        sink = ListSink()
        run(scenario(sink))
        assert sink.events == []

    def test_sampled_traces_are_complete_not_torsos(self):
        async def scenario(sink):
            with tracing.recording(sink, service="test", seed=5, sample=0.3):
                async with running_tier(workers=2) as tier:
                    async with await ServiceClient.connect(
                        "127.0.0.1", tier.port
                    ) as c:
                        for key in range(40):
                            await c.get(key)

        sink = ListSink()
        run(scenario(sink))
        trees = assert_clean_trees(sink.events)
        roots = data_roots(trees)
        assert 0 < len(roots) < 40  # sampled, not all-or-nothing
        for tid in roots:
            names = {s["name"] for s in trees["traces"][tid]}
            assert {"client.request", "router.request", "server.request"} <= names


class TestSpawnedCluster:
    """Real worker processes, one span file per process, stitched offline."""

    def test_span_files_stitch_across_processes(self, tmp_path):
        from repro.cluster.supervisor import running_cluster

        async def scenario():
            async with running_cluster(
                "lru", 64, workers=2, seed=9, trace_dir=str(tmp_path)
            ) as cluster:
                async with await ServiceClient.connect(
                    "127.0.0.1", cluster.port, frame="binary"
                ) as c:
                    for key in range(60):
                        await c.put(key, f"v{key}")
                    for key in range(60):
                        await c.get(key)

        run(scenario())
        files = sorted(tmp_path.glob("spans-*.ndjson"))
        assert len(files) == 3  # router + 2 workers
        spans = read_spans(files)
        trees = assert_clean_trees(spans)
        roots = data_roots(trees)
        assert len(roots) >= 120
        services = {s["svc"] for s in spans}
        assert {"router", "w0", "w1"} <= services
        for tid, root in roots.items():
            names = {s["name"] for s in trees["traces"][tid]}
            assert {"client.request", "router.request", "server.request",
                    "store.op"} <= names, (
                f"incomplete {root['op']} tree: {sorted(names)}"
            )
        summary = summarize(spans)
        assert summary["orphans"] == 0
        assert summary["names"]["server.request"]["count"] >= 120
