"""Live resharding: migration exactness, the double-read window, and
zero lost acknowledged writes under concurrent load.

The acceptance anchor from the roadmap: adding a worker mid-load
migrates only the expected key ranges (the ring's ownership diff) with
zero lost acknowledged writes and zero client-visible errors.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster.ring import HashRing
from repro.cluster.router import RouterServer
from repro.cluster.worker import WorkerSpec
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import running_server
from repro.service.store import PolicyStore

import repro

from tests.cluster.util import running_tier, start_worker


def run(coro):
    return asyncio.run(coro)


def extra_spec(index: int = 2, capacity: int = 64) -> WorkerSpec:
    return WorkerSpec(
        index=index, node=f"w{index}", policy="lru", capacity=capacity, seed=1000 + index
    )


class TestStatusAndValidation:
    def test_bare_reshard_reports_status(self):
        async def scenario():
            async with running_tier(workers=2) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    status = await c.reshard()
            assert status["ok"] is True
            assert status["migrating"] is False
            assert status["workers"] == ["w0", "w1"]
            assert status["reshards"] == 0

        run(scenario())

    def test_plain_server_rejects_reshard(self):
        async def scenario():
            store = PolicyStore(repro.LRUCache(8))
            async with running_server(store) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as c:
                    return await c.reshard("w9", host="127.0.0.1", port=1)

        response = run(scenario())
        assert response["ok"] is False
        assert response["code"] == "rejected"

    def test_add_existing_node_rejected(self):
        async def scenario():
            async with running_tier(workers=2) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    return await c.reshard("w1", host="127.0.0.1", port=9)

        response = run(scenario())
        assert response["ok"] is False
        assert "already on the ring" in response["error"]

    def test_unreachable_new_worker_rejected_ring_unchanged(self):
        async def scenario():
            async with running_tier(workers=2) as tier:
                # grab a port nothing listens on
                probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
                dead_port = probe.sockets[0].getsockname()[1]
                probe.close()
                await probe.wait_closed()
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    response = await c.reshard("w9", host="127.0.0.1", port=dead_port)
                return response, tier.router.workers

        response, workers = run(scenario())
        assert response["ok"] is False
        assert "not answering" in response["error"]
        assert workers == ["w0", "w1"]

    def test_remove_unknown_and_last_rejected(self):
        async def scenario():
            async with running_tier(workers=1) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    unknown = await c.reshard("w9", remove=True)
                    last = await c.reshard("w0", remove=True)
            return unknown, last

        unknown, last = run(scenario())
        assert unknown["ok"] is False and "not on the ring" in unknown["error"]
        assert last["ok"] is False and "last worker" in last["error"]

    def test_concurrent_reshard_rejected(self, monkeypatch):
        gate = asyncio.Event
        original = RouterServer._run_migration

        async def scenario():
            hold = asyncio.Event()

            async def gated(self, migration):
                await hold.wait()
                await original(self, migration)

            monkeypatch.setattr(RouterServer, "_run_migration", gated)
            async with running_tier(workers=2) as tier:
                first = await start_worker(extra_spec(2))
                second = await start_worker(extra_spec(3))
                try:
                    async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                        ok = await c.reshard("w2", host="127.0.0.1", port=first.port)
                        assert ok["ok"] is True
                        busy = await c.reshard("w3", host="127.0.0.1", port=second.port)
                        assert busy["ok"] is False
                        assert "already migrating" in busy["error"]
                        status = await c.reshard()
                        assert status["migrating"] is True and status["node"] == "w2"
                        hold.set()
                        await tier.router.wait_reshard(10)
                finally:
                    await first.stop()
                    await second.stop()

        run(scenario())


class TestSweep:
    def test_add_migrates_exactly_the_ownership_diff(self):
        """The sweep must move precisely the resident-with-payload keys
        whose ring owner changed — no more, no fewer — and afterwards
        every key's payload lives on its new owner."""

        async def scenario():
            async with running_tier(workers=2, capacity=256) as tier:
                keys = list(range(100))
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.mput(keys, [f"v{k}" for k in keys])
                    old_ring = tier.router.ring.copy()
                    # the post-add ring is a pure function of node names, so
                    # the movers are predictable before the worker exists —
                    # delete two of them to prove payload-less residents
                    # (which PEEK reports as stored=False) never migrate
                    predicted = old_ring.copy()
                    predicted.add_node("w2")
                    movers = [k for k in keys if old_ring.owner(k) != predicted.owner(k)]
                    assert len(movers) >= 3
                    deleted = set(movers[:2])
                    for key in deleted:
                        await c.delete(key)
                    extra = await start_worker(extra_spec(2, capacity=128))
                    try:
                        response = await c.reshard("w2", host="127.0.0.1", port=extra.port)
                        assert response["ok"] is True
                        await tier.router.wait_reshard(10)
                        new_ring = tier.router.ring
                        expected = sorted(k for k in movers if k not in deleted)
                        moved = tier.router.last_reshard
                        assert moved["error"] is None
                        assert moved["moved"] == len(expected)
                        # every surviving key's payload is on its new owner
                        servers = {
                            "w0": tier.server_for("w0"),
                            "w1": tier.server_for("w1"),
                            "w2": extra,
                        }
                        for key in keys:
                            if key in deleted:
                                continue
                            owner = new_ring.owner(key)
                            hit, value, stored = await servers[owner].store.peek(key)
                            assert hit and stored and value == f"v{key}", (key, owner)
                        # deleted movers stayed put: nothing stored anywhere
                        for key in deleted:
                            for server in servers.values():
                                _, _, stored = await server.store.peek(key)
                                assert not stored, key
                        # and values are still readable through the front door
                        got = await c.mget(keys)
                        assert [
                            v for k, v in zip(keys, got["values"]) if k not in deleted
                        ] == [f"v{k}" for k in keys if k not in deleted]
                    finally:
                        await extra.stop()

        run(scenario())

    def test_remove_drains_the_node_and_closes_it(self):
        async def scenario():
            async with running_tier(workers=3, capacity=192) as tier:
                keys = list(range(90))
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.mput(keys, [str(k) for k in keys])
                    old_ring = tier.router.ring.copy()
                    victim_keys = [k for k in keys if old_ring.owner(k) == "w1"]
                    assert victim_keys  # the ring gives every node a share
                    response = await c.reshard("w1", remove=True)
                    assert response["ok"] is True
                    await tier.router.wait_reshard(10)
                    assert tier.router.workers == ["w0", "w2"]
                    assert tier.router.last_reshard["moved"] == len(victim_keys)
                    got = await c.mget(keys)
                    assert got["values"] == [str(k) for k in keys]
                    status = await c.reshard()
            assert status["workers"] == ["w0", "w2"]

        run(scenario())


class TestDoubleReadWindow:
    def test_window_ops_never_lose_values(self, monkeypatch):
        """While the sweep is held open, every op must behave as if the
        cluster were a single store: reads find the value wherever it
        lives (migrating it on the fly), writes land on the new owner and
        invalidate the old copy."""
        original = RouterServer._run_migration

        async def scenario():
            hold = asyncio.Event()

            async def gated(self, migration):
                await hold.wait()
                await original(self, migration)

            monkeypatch.setattr(RouterServer, "_run_migration", gated)
            async with running_tier(workers=2, capacity=256) as tier:
                keys = list(range(80))
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.mput(keys, [f"old{k}" for k in keys])
                    old_ring = tier.router.ring.copy()
                    extra = await start_worker(extra_spec(2, capacity=128))
                    try:
                        assert (
                            await c.reshard("w2", host="127.0.0.1", port=extra.port)
                        )["ok"] is True
                        new_ring = tier.router.ring
                        movers = [
                            k for k in keys if old_ring.owner(k) != new_ring.owner(k)
                        ]
                        assert movers
                        # GET during the window: falls back to the old owner,
                        # migrates on the spot, answers the value
                        got = await c.get(movers[0])
                        assert got == {"ok": True, "hit": True, "value": f"old{movers[0]}"}
                        hit, value, stored = await extra.store.peek(movers[0])
                        assert hit and stored and value == f"old{movers[0]}"
                        # PUT during the window: new owner has it, old copy gone
                        await c.put(movers[1], "fresh")
                        assert (await c.get(movers[1]))["value"] == "fresh"
                        old_server = tier.server_for(old_ring.owner(movers[1]))
                        _, stale, stale_stored = await old_server.store.peek(movers[1])
                        assert stale is None and not stale_stored
                        # DEL during the window: both copies dropped
                        assert (await c.delete(movers[2]))["deleted"] is True
                        assert (await c.get(movers[2]))["value"] is None
                        # PEEK during the window: non-mutating double read
                        peeked = await c.peek(movers[3])
                        assert peeked["hit"] is True
                        assert peeked["value"] == f"old{movers[3]}"
                        # batches explode through the same path
                        got = await c.mget(movers[4:8])
                        assert got["values"] == [f"old{k}" for k in movers[4:8]]
                        hold.set()
                        await tier.router.wait_reshard(10)
                        # after the window: everything readable, nothing stale
                        final = await c.mget(keys)
                        for key, value in zip(keys, final["values"]):
                            if key == movers[1]:
                                assert value == "fresh"
                            elif key == movers[2]:
                                assert value is None
                            else:
                                assert value == f"old{key}"
                    finally:
                        await extra.stop()

        run(scenario())


class TestReshardUnderLoad:
    def test_zero_lost_acked_writes_zero_errors(self):
        """Writers and readers hammer the router while a worker joins.
        Keyspace < every worker's capacity, so nothing can be evicted:
        every acknowledged write must be readable afterwards with its
        latest acknowledged value, and no client may see an error."""

        async def scenario():
            async with running_tier(workers=2, capacity=400, seed=3) as tier:
                keyspace = 60  # far below the 100-slot new-worker share
                acked: dict[int, str] = {}
                errors: list[dict] = []
                stop = asyncio.Event()

                async def writer(worker_id: int) -> None:
                    rng = np.random.default_rng(worker_id)
                    async with await ServiceClient.connect(
                        "127.0.0.1", tier.port, timeout=10.0
                    ) as c:
                        version = 0
                        while not stop.is_set():
                            key = int(rng.integers(0, keyspace))
                            value = f"w{worker_id}-{version}"
                            response = await c.put(key, value)
                            if response.get("ok"):
                                acked[key] = value  # single loop: no lock needed
                            else:
                                errors.append(response)
                            version += 1
                            if version % 7 == 0:
                                got = await c.get(int(rng.integers(0, keyspace)))
                                if not got.get("ok"):
                                    errors.append(got)

                writers = [asyncio.create_task(writer(i)) for i in range(3)]
                await asyncio.sleep(0.1)  # build up state under load
                extra = await start_worker(extra_spec(2, capacity=200))
                try:
                    async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                        response = await c.reshard("w2", host="127.0.0.1", port=extra.port)
                        assert response["ok"] is True
                        await tier.router.wait_reshard(30)
                        await asyncio.sleep(0.05)  # a little post-window load
                        stop.set()
                        await asyncio.gather(*writers)
                        assert errors == [], errors[:3]
                        assert tier.router.last_reshard["error"] is None
                        # every acknowledged write is readable with its
                        # latest acknowledged value
                        keys = sorted(acked)
                        got = await c.mget(keys)
                        assert got["hits"] == [True] * len(keys)
                        for key, value in zip(keys, got["values"]):
                            assert value == acked[key], key
                        stats = await c.stats()
                        assert stats["errors"] == 0
                finally:
                    await extra.stop()

        run(scenario())
