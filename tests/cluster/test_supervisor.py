"""The real thing: spawned worker processes under a ClusterSupervisor.

Everything else in ``tests/cluster/`` runs workers in-process for speed;
these tests pay the spawn cost once per test to prove the multi-process
arrangement — spawn handshake, cross-process replay parity, graceful
stop, and live grow/shrink — works end to end.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster.supervisor import running_cluster
from repro.cluster.worker import cluster_reference
from repro.errors import ServiceError
from repro.service.client import ServiceClient


def run(coro):
    return asyncio.run(coro)


def small_trace(length: int = 400, pages: int = 96, seed: int = 13) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(p) for p in rng.zipf(1.2, size=length * 4) % pages][:length]


class TestSpawnedCluster:
    def test_replay_matches_offline_reference(self):
        """A pipelined replay through router + spawned workers produces
        the same hit sequence as the offline ring-partitioned simulation:
        the cluster is differentially pinned to the simulator."""
        trace = small_trace()

        async def scenario():
            async with running_cluster("lru", 64, workers=2, seed=9) as cluster:
                assert sorted(cluster.workers) == ["w0", "w1"]
                hits = 0
                async with await ServiceClient.connect(
                    "127.0.0.1", cluster.port, frame="binary"
                ) as c:
                    assert await c.ping() is True
                    for page in trace:
                        response = await c.get(page)
                        assert response["ok"] is True
                        hits += bool(response["hit"])
                    stats = await c.stats()
                return hits, stats

        hits, stats = run(scenario())
        reference = cluster_reference("lru", 64, 2, small_trace(), seed=9)
        assert hits == reference["hits"]
        assert stats["accesses"] == reference["accesses"]
        assert stats["hit_rate"] == pytest.approx(reference["hit_rate"])
        assert stats["workers"] == 2
        assert len(stats["per_worker"]) == 2
        assert stats["errors"] == 0

    def test_grow_then_shrink_live(self):
        """add_worker reshards a spawned process into the ring; every
        value stays readable; remove_worker drains it back out."""

        async def scenario():
            async with running_cluster("lru", 120, workers=2, seed=4) as cluster:
                keys = list(range(50))
                async with await ServiceClient.connect("127.0.0.1", cluster.port) as c:
                    await c.mput(keys, [f"v{k}" for k in keys])
                    handle = await cluster.add_worker()
                    assert handle.node == "w2"
                    await cluster.router.wait_reshard(60)
                    assert cluster.router.last_reshard["error"] is None
                    assert sorted(cluster.workers) == ["w0", "w1", "w2"]
                    got = await c.mget(keys)
                    assert got["values"] == [f"v{k}" for k in keys]
                    await cluster.remove_worker("w2")
                    assert sorted(cluster.workers) == ["w0", "w1"]
                    got = await c.mget(keys)
                    assert got["values"] == [f"v{k}" for k in keys]
                    stats = await c.stats()
                    assert stats["errors"] == 0
                assert "w2" not in cluster.handles

        run(scenario())

    def test_stats_and_double_start_guard(self):
        async def scenario():
            async with running_cluster("heatsink", 64, workers=2, seed=2) as cluster:
                with pytest.raises(ServiceError):
                    await cluster.start()
                stats = await cluster.stats()
                assert stats["policy"].startswith("HEAT-SINK")
                assert stats["capacity"] == 64
                assert stats["router"]["migrating"] is False

        run(scenario())
