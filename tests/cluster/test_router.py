"""Router behaviour over in-process workers: routing, ordering, parity.

The contract under test: a client must not be able to tell a router
from a single :class:`CacheServer` (same ops, same framings, same
response order), while hit-for-hit results stay pinned to the offline
ring-partitioned reference (:func:`cluster_reference`).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.cluster.ring import HashRing
from repro.cluster.router import RouterServer
from repro.cluster.worker import build_specs, cluster_reference
from repro.errors import ConfigurationError, ServiceError
from repro.service.client import ServiceClient
from repro.service.loadgen import replay_trace
from repro.service.protocol import CODE_UPSTREAM

from tests.cluster.util import running_tier, start_worker


def run(coro):
    return asyncio.run(coro)


class TestConstruction:
    def test_no_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            RouterServer([])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            RouterServer([("w0", "h", 1), ("w0", "h", 2)])

    def test_ring_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="ring nodes"):
            RouterServer([("w0", "h", 1)], ring=HashRing(["a"]))

    def test_bad_knobs_rejected(self):
        workers = [("w0", "h", 1)]
        with pytest.raises(ConfigurationError):
            RouterServer(workers, upstream_retries=-1)
        with pytest.raises(ConfigurationError):
            RouterServer(workers, max_inflight=0)
        with pytest.raises(ConfigurationError):
            RouterServer(workers, frames=("smoke-signals",))


class TestRoundTrip:
    @pytest.mark.parametrize("frame", ["ndjson", "binary"])
    def test_all_ops_both_framings(self, frame):
        async def scenario():
            async with running_tier(workers=3) as tier:
                async with await ServiceClient.connect(
                    "127.0.0.1", tier.port, frame=frame
                ) as c:
                    assert await c.ping() is True
                    assert await c.get(1) == {"ok": True, "hit": False, "value": None}
                    assert (await c.put(1, "v1"))["hit"] is True
                    assert await c.get(1) == {"ok": True, "hit": True, "value": "v1"}
                    assert (await c.peek(1)) == {
                        "ok": True,
                        "hit": True,
                        "value": "v1",
                        "stored": True,
                    }
                    assert (await c.delete(1))["deleted"] is True
                    # payload gone, residency (and thus PEEK miss) too
                    assert (await c.get(1))["value"] is None
                    keys = await c.keys()
                    assert 1 in keys  # DEL keeps residency, drops payload
                    stats = await c.stats()
            assert stats["workers"] == 3
            assert stats["gets"] == 3
            assert stats["puts"] == 1
            assert stats["dels"] == 1
            assert len(stats["per_worker"]) == 3
            assert stats["router"]["forwarded"] >= 6

        run(scenario())

    def test_requests_route_by_ring_owner(self):
        async def scenario():
            async with running_tier(workers=3, capacity=96) as tier:
                ring = tier.router.ring
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    for key in range(60):
                        await c.put(key, f"v{key}")
                # each worker holds exactly the keys the ring assigns it
                for spec, server in zip(tier.specs, tier.servers):
                    resident = await server.store.keys()
                    assert resident == sorted(
                        k for k in range(60) if ring.owner(k) == spec.node
                    )

        run(scenario())

    def test_pipelined_window_preserves_order(self):
        """Responses come back in request order even though the keys
        scatter across workers mid-window."""

        async def scenario():
            async with running_tier(workers=3, capacity=12) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    return [
                        r["hit"] for r in await c.get_window([1, 1, 2, 1, 3, 2, 9, 9])
                    ]

        assert run(scenario()) == [False, True, False, True, False, True, False, True]

    def test_mget_mput_fan_out_and_reassemble(self):
        async def scenario():
            async with running_tier(workers=3, capacity=96) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    keys = list(range(40))
                    put = await c.mput(keys, [f"v{k}" for k in keys])
                    # first touch: every PUT is a policy miss, value stored
                    assert put["hits"] == [False] * 40
                    got = await c.mget(keys)
                    assert got["hits"] == [True] * 40
                    assert got["values"] == [f"v{k}" for k in keys]
                    # mixed batch: order preserved across owners
                    mixed = await c.mget([39, 0, 999, 7])
                    assert mixed["hits"] == [True, True, False, True]
                    assert mixed["values"] == ["v39", "v0", None, "v7"]
                    stats = await c.stats()
            assert stats["router"]["fanouts"] >= 3

        run(scenario())

    def test_single_owner_batch_forwards_whole_frame(self):
        async def scenario():
            async with running_tier(workers=2) as tier:
                ring = tier.router.ring
                # find keys all owned by one node
                bucket: dict[str, list[int]] = {}
                for key in range(200):
                    bucket.setdefault(ring.owner(key), []).append(key)
                    if any(len(v) >= 5 for v in bucket.values()):
                        break
                keys = next(v for v in bucket.values() if len(v) >= 5)[:5]
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.mput(keys, ["x"] * len(keys))
                    got = await c.mget(keys)
                    stats = await c.stats()
                assert got["hits"] == [True] * len(keys)
                # both batches forwarded as single frames, zero data
                # fan-outs (STATS counts its own after snapshotting)
                assert stats["router"]["fanouts"] == 0
                assert stats["router"]["forwarded"] == 2

        run(scenario())

    def test_keys_merged_and_deduped(self):
        async def scenario():
            async with running_tier(workers=3, capacity=96) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    for key in range(30):
                        await c.put(key, key)
                    keys = await c.keys()
                assert keys == sorted(set(keys)) == list(range(30))

        run(scenario())


class TestFraming:
    def test_hello_negotiates_binary(self):
        async def scenario():
            async with running_tier() as tier:
                c = await ServiceClient.connect("127.0.0.1", tier.port, frame="binary")
                assert c.frame == "binary"
                await c.put(1, "x")
                assert (await c.get(1))["value"] == "x"
                await c.close()

        run(scenario())

    def test_ndjson_only_router_rejects_binary(self):
        async def scenario():
            async with running_tier(frames=("ndjson",)) as tier:
                with pytest.raises(ServiceError, match="binary"):
                    await ServiceClient.connect("127.0.0.1", tier.port, frame="binary")

        run(scenario())

    def test_mixed_framings_on_one_connection(self):
        """Per-frame autodetection: the router answers each frame in the
        framing it arrived in, like the single server."""

        async def scenario():
            async with running_tier() as tier:
                reader, writer = await asyncio.open_connection("127.0.0.1", tier.port)
                body = json.dumps({"op": "PUT", "key": 3, "value": "v"}).encode()
                writer.write(b"\xb1" + len(body).to_bytes(4, "big") + body)
                writer.write(b'{"op": "GET", "key": 3}\n')
                await writer.drain()
                header = await reader.readexactly(5)
                binary_reply = await reader.readexactly(int.from_bytes(header[1:], "big"))
                ndjson_reply = await reader.readline()
                writer.close()
                return json.loads(binary_reply), json.loads(ndjson_reply)

        put, got = run(scenario())
        assert put == {"ok": True, "hit": False}
        assert got == {"ok": True, "hit": True, "value": "v"}


class TestErrorIsolation:
    def test_malformed_request_answered_not_fatal(self):
        async def scenario():
            async with running_tier() as tier:
                reader, writer = await asyncio.open_connection("127.0.0.1", tier.port)
                writer.write(b"this is not json\n")
                writer.write(b'{"op": "PING"}\n')
                await writer.drain()
                bad = json.loads(await reader.readline())
                pong = json.loads(await reader.readline())
                writer.close()
                return bad, pong

        bad, pong = run(scenario())
        assert bad["ok"] is False and bad["code"] == "bad-request"
        assert pong == {"ok": True, "pong": True}

    def test_dead_worker_yields_upstream_error_not_crash(self):
        async def scenario():
            async with running_tier(workers=2, upstream_retries=1) as tier:
                victim = tier.specs[0].node
                await tier.server_for(victim).stop()
                ring = tier.router.ring
                dead_key = next(k for k in range(100) if ring.owner(k) == victim)
                live_key = next(k for k in range(100) if ring.owner(k) != victim)
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    dead = await c.get(dead_key)
                    live = await c.put(live_key, "still works")
                    stats = await c.stats()
                assert dead["ok"] is False
                assert dead["code"] == CODE_UPSTREAM
                assert live["ok"] is True
                # the snapshot degrades (dead worker marked) instead of failing
                assert stats.get("degraded") is True
                assert any("error" in w for w in stats["per_worker"])
                assert stats["router"]["upstream_errors"] > 0

        run(scenario())

    def test_idempotent_retry_reconnects_after_worker_restart(self):
        async def scenario():
            async with running_tier(workers=2, upstream_retries=2) as tier:
                victim_index = 0
                victim = tier.specs[victim_index]
                port = tier.servers[victim_index].port
                ring = tier.router.ring
                key = next(k for k in range(100) if ring.owner(k) == victim.node)
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.put(key, "before")  # establishes the link
                    await tier.server_for(victim.node).stop()
                    # same port, fresh server (fresh store: payload gone)
                    tier.servers[victim_index] = await start_worker(victim, port=port)
                    got = await c.get(key)  # GET is idempotent -> safe to replay
                    stats = await c.stats()
                assert got["ok"] is True  # answered by the restarted worker
                # recovery is either a clean reconnect (link saw the EOF
                # first) or a counted retry (GET was already in flight) —
                # both end with a second upstream connection
                assert stats["router"]["upstream_connects"] >= 2

        run(scenario())

    def test_overload_shedding(self):
        async def scenario():
            async with running_tier(max_connections=1) as tier:
                keeper = await ServiceClient.connect("127.0.0.1", tier.port)
                await keeper.ping()
                shed = await ServiceClient.connect("127.0.0.1", tier.port, timeout=2.0)
                response = await shed.get(1)
                assert response["ok"] is False
                assert response["code"] == "overloaded"
                assert tier.router.metrics.rejected == 1
                await shed.close()
                await keeper.close()

        run(scenario())


class TestParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_replay_matches_offline_reference_exactly(self, workers):
        """The acceptance anchor: a one-connection pipelined replay
        through the router reports the exact hit rate of the offline
        ring-partitioned simulation with the same derived seeds."""
        rng = np.random.default_rng(9)
        trace = (rng.zipf(1.2, size=3000).astype(np.int64) % 300)

        async def scenario():
            async with running_tier("lru", 128, workers, seed=21) as tier:
                return await replay_trace(
                    trace, host="127.0.0.1", port=tier.port, frame="binary"
                )

        report = run(scenario())
        reference = cluster_reference("lru", 128, workers, trace, seed=21)
        assert report.errors == 0
        assert report.server_stats["hit_rate"] == reference["hit_rate"]
        assert report.server_delta["accesses"] == reference["accesses"]

    def test_parity_holds_for_seeded_policy(self):
        rng = np.random.default_rng(10)
        trace = (rng.zipf(1.3, size=2000).astype(np.int64) % 200)

        async def scenario():
            async with running_tier("heatsink", 96, 3, seed=13) as tier:
                return await replay_trace(trace, host="127.0.0.1", port=tier.port)

        report = run(scenario())
        reference = cluster_reference("heatsink", 96, 3, trace, seed=13)
        assert report.errors == 0
        assert report.server_stats["hit_rate"] == reference["hit_rate"]

    def test_one_worker_cluster_matches_single_server_seeding(self):
        """workers=1 must seed with the root seed itself (not derived),
        exactly like ShardedPolicyStore.build(shards=1)."""
        specs = build_specs("heatsink", 64, 1, seed=77)
        assert specs[0].seed == 77
        assert specs[0].capacity == 64


class TestLifecycle:
    def test_stop_with_drain_lets_inflight_finish(self):
        async def scenario():
            async with running_tier() as tier:
                c = await ServiceClient.connect("127.0.0.1", tier.port)
                await c.put(1, "x")
                await tier.router.stop(drain=2.0)
                assert tier.router.is_serving is False
                await c.close()

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            async with running_tier() as tier:
                with pytest.raises(ServiceError, match="already"):
                    await tier.router.start()

        run(scenario())

    def test_metrics_exposition_merges_workers(self):
        async def scenario():
            async with running_tier(workers=2) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    await c.put(1, "x")
                    await c.get(1)
                    return await c.metrics()

        text = run(scenario())
        assert "repro_cluster_workers 2" in text
        assert 'repro_worker_up{node="w0"} 1' in text
        assert 'repro_worker_up{node="w1"} 1' in text
        assert "repro_router_forwarded_total" in text
        assert "repro_request_latency_seconds_bucket" in text

    def test_merged_exposition_parses_round_trip(self):
        """The router's merged METRICS must survive the repro.obs
        exposition parser — families, types, labels, histogram buckets —
        so a real Prometheus (or our own stats CLI) can scrape a cluster
        exactly like a single server."""
        from repro.obs.exposition import parse_prometheus

        async def scenario():
            async with running_tier(workers=2) as tier:
                async with await ServiceClient.connect("127.0.0.1", tier.port) as c:
                    for key in range(8):
                        await c.put(key, "x")
                    for key in range(8):
                        await c.get(key)
                    await c.delete(3)
                    return await c.metrics()

        parsed = parse_prometheus(run(scenario()))
        assert parsed.value("repro_cluster_workers") == 2.0
        assert parsed.value("repro_worker_up", node="w0") == 1.0
        assert parsed.value("repro_worker_up", node="w1") == 1.0
        # router-observed request latency: combined + per-op (parity with
        # the single server's exposition)
        assert parsed.types["repro_request_latency_seconds"] == "histogram"
        assert parsed.types["repro_op_latency_seconds"] == "histogram"
        assert parsed.value("repro_op_latency_seconds_count", op="get") == 8.0
        assert parsed.value("repro_op_latency_seconds_count", op="put") == 8.0
        assert parsed.value("repro_op_latency_seconds_count", op="del") == 1.0
        assert parsed.value("repro_request_latency_seconds_count") >= 17.0
        # worker counters merged across the tier survive the round trip
        assert parsed.value("repro_hits_total") >= 8.0
