"""HashRing: determinism, balance, and the minimal-disruption contract.

The load-bearing claims:

1. **Determinism** — ownership is a pure function of the node *set* and
   ``vnodes``: insertion order, copies, and fresh processes (BLAKE2b,
   not the salted builtin ``hash``) all agree. The router, the offline
   reference partitioner, and the supervisor all rely on this.
2. **Balance** — with the default 64 vnodes, every worker's key share
   stays within the bound stated in the module docs (~±25% of ideal for
   ≤8 workers), and more vnodes tighten it.
3. **Minimal disruption** — adding a node only moves keys *to* it;
   removing a node only moves keys *from* it. This is the property the
   live-reshard sweep depends on: the set of keys to migrate is exactly
   the ownership diff.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import DEFAULT_VNODES, HashRing, node_token
from repro.errors import ConfigurationError, ServiceError

KEYS = np.random.default_rng(0xC0FFEE).integers(0, 1 << 48, size=50_000)

node_names = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestConstruction:
    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ServiceError, match="empty"):
            HashRing().owner(1)
        with pytest.raises(ServiceError, match="empty"):
            HashRing().owners([1, 2])

    def test_bad_vnodes(self):
        with pytest.raises(ConfigurationError, match="vnodes"):
            HashRing(["a"], vnodes=0)

    def test_bad_node_name(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            HashRing([""])
        with pytest.raises(ConfigurationError, match="non-empty"):
            HashRing().add_node(3)  # type: ignore[arg-type]

    def test_duplicate_add_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(ConfigurationError, match="already"):
            ring.add_node("a")

    def test_remove_absent_raises(self):
        with pytest.raises(ConfigurationError, match="not on the ring"):
            HashRing(["a"]).remove_node("b")

    def test_remove_last_raises(self):
        with pytest.raises(ConfigurationError, match="last node"):
            HashRing(["a"]).remove_node("a")

    def test_membership(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "b" in ring and "c" not in ring
        assert len(ring) == 2
        assert ring.nodes == {"a", "b"}

    def test_node_token_is_process_stable(self):
        # pinned value: a changed hash function would silently remap every
        # key in every deployed cluster
        assert node_token("w0") == int.from_bytes(
            __import__("hashlib").blake2b(b"w0", digest_size=8).digest(), "big"
        )


class TestDeterminism:
    @given(names=node_names)
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_is_irrelevant(self, names):
        forward = HashRing(names)
        backward = HashRing(reversed(names))
        keys = KEYS[:500]
        assert forward.owners(keys) == backward.owners(keys)

    @given(names=node_names)
    @settings(max_examples=25, deadline=None)
    def test_incremental_equals_fresh(self, names):
        """add_node one at a time == constructing with the full set."""
        grown = HashRing()
        for name in names:
            grown.add_node(name)
        fresh = HashRing(names)
        keys = KEYS[:300]
        assert grown.owners(keys) == fresh.owners(keys)

    def test_copy_is_independent(self):
        ring = HashRing(["a", "b", "c"])
        snapshot = ring.copy()
        ring.remove_node("c")
        keys = KEYS[:1000]
        fresh = HashRing(["a", "b", "c"])
        assert snapshot.owners(keys) == fresh.owners(keys)
        assert snapshot.nodes == {"a", "b", "c"}
        assert ring.nodes == {"a", "b"}

    def test_owners_matches_scalar_owner(self):
        ring = HashRing([f"w{i}" for i in range(5)])
        keys = KEYS[:2000]
        assert ring.owners(keys) == [ring.owner(int(k)) for k in keys]

    def test_negative_and_huge_keys(self):
        ring = HashRing(["a", "b"])
        for key in (-1, 0, 2**63 - 1, -(2**63)):
            assert ring.owner(key) in ("a", "b")


class TestBalance:
    @pytest.mark.parametrize("workers", [2, 3, 4, 5, 8])
    def test_default_vnodes_balance_bound(self, workers):
        """The bound stated in the module docs: shares within ~±25% of
        ideal at 64 vnodes for clusters up to 8 workers (measured worst
        deviation factor 1.23 over this key set; asserted with margin)."""
        ring = HashRing([f"w{i}" for i in range(workers)], vnodes=DEFAULT_VNODES)
        owners = ring.owners(KEYS)
        counts = {node: 0 for node in ring.nodes}
        for owner in owners:
            counts[owner] += 1
        ideal = len(KEYS) / workers
        assert max(counts.values()) <= 1.30 * ideal
        assert min(counts.values()) >= 0.70 * ideal

    def test_more_vnodes_tighten_the_spread(self):
        """Average imbalance must shrink as vnodes grow (the O(1/sqrt(v))
        claim, checked coarsely across a 16x vnode range)."""

        def spread(vnodes: int) -> float:
            total = 0.0
            for workers in (2, 3, 4, 5, 8):
                ring = HashRing([f"w{i}" for i in range(workers)], vnodes=vnodes)
                counts = {node: 0 for node in ring.nodes}
                for owner in ring.owners(KEYS[:20_000]):
                    counts[owner] += 1
                ideal = 20_000 / workers
                total += max(abs(c - ideal) / ideal for c in counts.values())
            return total

        loose, tight = spread(8), spread(128)
        assert tight < loose / 2

    def test_every_node_owns_something(self):
        ring = HashRing([f"w{i}" for i in range(8)])
        assert set(ring.owners(KEYS[:20_000])) == ring.nodes


class TestDisruption:
    @given(names=node_names, extra=st.text(min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_add_moves_keys_only_to_the_new_node(self, names, extra):
        if extra in names:
            return
        before = HashRing(names)
        after = before.copy()
        after.add_node(extra)
        keys = KEYS[:500]
        for old, new in zip(before.owners(keys), after.owners(keys)):
            assert new == old or new == extra

    @given(names=node_names.filter(lambda n: len(n) >= 2))
    @settings(max_examples=50, deadline=None)
    def test_remove_moves_keys_only_from_the_removed_node(self, names):
        removed = names[0]
        before = HashRing(names)
        after = before.copy()
        after.remove_node(removed)
        keys = KEYS[:500]
        for old, new in zip(before.owners(keys), after.owners(keys)):
            if old != removed:
                assert new == old
            else:
                assert new != removed

    def test_add_then_remove_round_trips(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        keys = KEYS[:5000]
        before = ring.owners(keys)
        ring.add_node("w4")
        ring.remove_node("w4")
        assert ring.owners(keys) == before

    def test_add_moves_roughly_one_share(self):
        """Adding the (N+1)th node should claim about 1/(N+1) of the keys,
        not rehash the world — the whole point of consistent hashing."""
        before = HashRing([f"w{i}" for i in range(4)])
        after = before.copy()
        after.add_node("w4")
        keys = KEYS[:20_000]
        moved = sum(
            1 for old, new in zip(before.owners(keys), after.owners(keys)) if old != new
        )
        share = len(keys) / 5
        assert 0.5 * share <= moved <= 1.6 * share
