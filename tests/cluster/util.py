"""Shared scaffolding for cluster tests: in-process worker tiers.

Most router behaviour needs real sockets but not real *processes* —
an in-process :class:`CacheServer` per worker keeps the tests fast and
debuggable while exercising the identical wire path the spawned tier
uses (`test_supervisor.py` covers the true multi-process arrangement).
"""

from __future__ import annotations

import contextlib
from typing import Any, AsyncIterator

from repro.cluster.router import RouterServer
from repro.cluster.worker import WorkerSpec, build_specs, build_worker_store
from repro.service.server import CacheServer


class InProcessTier:
    """N worker servers in this event loop, plus a router over them."""

    def __init__(self, specs: list[WorkerSpec], servers: list[CacheServer], router: RouterServer):
        self.specs = specs
        self.servers = servers
        self.router = router

    @property
    def port(self) -> int:
        return self.router.port

    def server_for(self, node: str) -> CacheServer:
        for spec, server in zip(self.specs, self.servers):
            if spec.node == node:
                return server
        raise KeyError(node)


async def start_worker(spec: WorkerSpec, *, port: int = 0) -> CacheServer:
    server = CacheServer(
        build_worker_store(spec), port=port, max_inflight=spec.max_inflight
    )
    await server.start()
    return server


@contextlib.asynccontextmanager
async def running_tier(
    policy: str = "lru",
    capacity: int = 64,
    workers: int = 2,
    *,
    seed: int = 5,
    **router_kwargs: Any,
) -> AsyncIterator[InProcessTier]:
    specs = build_specs(policy, capacity, workers, seed=seed)
    servers: list[CacheServer] = []
    try:
        for spec in specs:
            servers.append(await start_worker(spec))
        router = RouterServer(
            [(spec.node, "127.0.0.1", server.port) for spec, server in zip(specs, servers)],
            **router_kwargs,
        )
        await router.start()
        try:
            yield InProcessTier(specs, servers, router)
        finally:
            await router.stop()
    finally:
        for server in servers:
            await server.stop()
