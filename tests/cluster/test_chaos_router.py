"""Chaos on the upstream plane: router↔worker links under seeded faults.

A :class:`~repro.service.faults.ChaosProxy` sits between the router and
one worker, applying a deterministic :class:`FaultPlan` to the binary
frames of the pooled links. The acceptance bar: the router never
crashes, every client op gets exactly one answer (ok or coded error),
idempotent ops are retried while writes never are, and the workers'
store invariants hold no matter what the network did.
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro.cluster.router import RouterServer
from repro.cluster.worker import build_specs
from repro.errors import ProtocolError, ServiceError
from repro.service.client import ServiceClient
from repro.service.faults import FaultPlan, running_proxy
from repro.service.protocol import CODE_UPSTREAM

from tests.cluster.util import start_worker


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def chaotic_tier(plan: FaultPlan, *, workers: int = 2, capacity: int = 512, **kwargs):
    """An in-process tier whose *last* worker sits behind a chaos proxy.

    Yields ``(router, servers, proxy, chaos_node)``. The router's
    upstream timeout is cut to 0.4s so dropped frames resolve quickly.
    """
    specs = build_specs("lru", capacity, workers, seed=5)
    servers = [await start_worker(spec) for spec in specs]
    try:
        async with running_proxy("127.0.0.1", servers[-1].port, plan) as proxy:
            endpoints = [
                (spec.node, "127.0.0.1", server.port)
                for spec, server in zip(specs[:-1], servers[:-1])
            ]
            endpoints.append((specs[-1].node, "127.0.0.1", proxy.port))
            kwargs.setdefault("upstream_timeout", 0.4)
            router = RouterServer(endpoints, **kwargs)
            await router.start()
            try:
                yield router, servers, proxy, specs[-1].node
            finally:
                await router.stop()
    finally:
        for server in servers:
            await server.stop()


def chaotic_keys(router: RouterServer, node: str, count: int) -> list[int]:
    """The first ``count`` keys the ring routes to the chaotic worker."""
    keys = [k for k in range(2000) if router.ring.owner(k) == node]
    assert len(keys) >= count
    return keys[:count]


class TestChaosUpstream:
    def test_drops_time_out_and_idempotent_gets_retry(self):
        """Dropped frames surface as upstream timeouts; GET is idempotent
        so the router retries it on a fresh connection — and every one of
        the N requests still gets exactly one answer."""
        plan = FaultPlan(seed=11, drop_rate=0.06, direction="both")

        async def scenario():
            async with chaotic_tier(plan) as (router, servers, proxy, node):
                keys = chaotic_keys(router, node, 120)
                responses = []
                async with await ServiceClient.connect(
                    "127.0.0.1", router.port, timeout=30.0
                ) as c:
                    for key in keys:
                        responses.append(await c.get(key))
                    assert await c.ping() is True  # the router itself is fine
                assert len(responses) == len(keys)
                for response in responses:
                    if not response.get("ok"):
                        assert response["code"] == CODE_UPSTREAM
                m = router.metrics
                assert proxy.stats.drops >= 1  # the plan actually fired
                assert m.upstream_timeouts >= 1
                assert m.upstream_retries >= 1  # GETs were replayed
                assert router.is_serving
                for server in servers:
                    assert await server.store.verify() == []

        run(scenario())

    def test_writes_are_never_retried(self):
        """A PUT that times out must NOT be replayed (it is not
        idempotent for the policy's access sequence): timeouts are
        counted, the retry counter stays at zero, and every *acked* PUT
        is durably stored on the worker."""
        plan = FaultPlan(seed=7, drop_rate=0.08, direction="c2s")

        async def scenario():
            async with chaotic_tier(plan) as (router, servers, proxy, node):
                keys = chaotic_keys(router, node, 100)
                acked: dict[int, str] = {}
                async with await ServiceClient.connect(
                    "127.0.0.1", router.port, timeout=30.0
                ) as c:
                    for key in keys:
                        response = await c.put(key, f"v{key}")
                        if response.get("ok"):
                            acked[key] = f"v{key}"
                        else:
                            assert response["code"] == CODE_UPSTREAM
                m = router.metrics
                assert proxy.stats.drops >= 1
                assert m.upstream_timeouts >= 1
                assert m.upstream_retries == 0  # writes never replay
                assert acked  # chaos is partial, most writes land
                chaotic_store = servers[-1].store
                for key, value in acked.items():
                    resident, stored_value, stored = await chaotic_store.peek(key)
                    assert resident and stored and stored_value == value, key
                assert await chaotic_store.verify() == []

        run(scenario())

    def test_resets_truncations_corruption_never_crash_the_router(self):
        """The full menu at once, both directions. Every op returns a
        dict or a client-side decode error — never a hang, never a
        router crash — and both stores stay internally consistent."""
        plan = FaultPlan(
            seed=23,
            drop_rate=0.02,
            reset_rate=0.03,
            truncate_rate=0.03,
            corrupt_rate=0.04,
            delay_rate=0.05,
            delay_s=0.001,
            direction="both",
        )

        async def scenario():
            async with chaotic_tier(plan) as (router, servers, proxy, node):
                answered = 0
                client_errors = 0
                async with await ServiceClient.connect(
                    "127.0.0.1", router.port, timeout=30.0
                ) as c:
                    for i in range(150):
                        try:
                            if i % 3 == 0:
                                response = await c.put(i, f"v{i}")
                            elif i % 3 == 1:
                                response = await c.get(i - 1)
                            else:
                                response = await c.mget([i, i - 1, i - 2])
                            assert isinstance(response, dict)
                            answered += 1
                        except (ServiceError, ProtocolError):
                            # a corrupted/reset *response* is a client-side
                            # error; the router must shrug it off
                            client_errors += 1
                assert answered + client_errors == 150
                assert answered > 0
                assert proxy.stats.faults >= 1
                assert router.is_serving
                # the chaos-free worker never noticed anything
                async with await ServiceClient.connect(
                    "127.0.0.1", router.port, timeout=30.0
                ) as c:
                    clean = [k for k in range(500) if router.ring.owner(k) != node][:20]
                    for key in clean:
                        assert (await c.put(key, "x")).get("ok") is True
                for server in servers:
                    assert await server.store.verify() == []

        run(scenario())

    def test_clean_plan_is_transparent(self):
        """A zero-rate plan must forward everything untouched: no
        errors, no retries, no timeouts — the proxy is invisible."""
        plan = FaultPlan(seed=1)

        async def scenario():
            async with chaotic_tier(plan) as (router, servers, proxy, node):
                keys = chaotic_keys(router, node, 40)
                async with await ServiceClient.connect("127.0.0.1", router.port) as c:
                    for key in keys:
                        assert (await c.put(key, str(key)))["ok"] is True
                    got = await c.mget(keys)
                    assert got["values"] == [str(k) for k in keys]
                m = router.metrics
                assert proxy.stats.faults == 0
                assert proxy.stats.frames > 0
                assert (m.upstream_timeouts, m.upstream_retries, m.upstream_errors) == (
                    0,
                    0,
                    0,
                )

        run(scenario())
