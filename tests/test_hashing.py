"""Tests for repro.hashing — mixing and range reduction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import (
    TabulationHasher,
    hash_to_range,
    mix_pair,
    splitmix64,
    tabulation_hash,
)


class TestSplitmix64:
    def test_known_vector(self):
        # reference value from the splitmix64 specification (seed 0 -> first output)
        assert int(splitmix64(0)) == 0xE220A8397B1DCDAF

    def test_bijection_no_collisions(self):
        xs = np.arange(100_000, dtype=np.uint64)
        hashed = splitmix64(xs)
        assert np.unique(hashed).size == xs.size

    def test_scalar_and_array_agree(self):
        xs = np.arange(32, dtype=np.uint64)
        arr = splitmix64(xs)
        for i, x in enumerate(xs.tolist()):
            assert int(splitmix64(x)) == int(arr[i])

    def test_input_not_mutated(self):
        xs = np.arange(8, dtype=np.uint64)
        before = xs.copy()
        splitmix64(xs)
        assert np.array_equal(xs, before)


class TestMixPair:
    def test_sensitive_to_both_arguments(self):
        base = int(mix_pair(1, 2))
        assert int(mix_pair(1, 3)) != base
        assert int(mix_pair(2, 2)) != base

    def test_not_symmetric(self):
        assert int(mix_pair(10, 20)) != int(mix_pair(20, 10))


class TestHashToRange:
    def test_range_bounds(self):
        xs = np.arange(10_000, dtype=np.int64)
        for n in (1, 2, 7, 100, 1 << 20):
            out = hash_to_range(xs, n, salt=3)
            assert out.min() >= 0 and out.max() < n

    def test_n_one_maps_to_zero(self):
        assert hash_to_range(12345, 1) == 0

    def test_scalar_matches_array(self):
        xs = np.arange(64, dtype=np.int64)
        arr = hash_to_range(xs, 97, salt=5)
        for i, x in enumerate(xs.tolist()):
            assert hash_to_range(x, 97, salt=5) == int(arr[i])

    def test_salt_changes_function(self):
        xs = np.arange(1000, dtype=np.int64)
        a = hash_to_range(xs, 256, salt=1)
        b = hash_to_range(xs, 256, salt=2)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self):
        xs = np.arange(200_000, dtype=np.int64)
        out = hash_to_range(xs, 16, salt=9)
        counts = np.bincount(out, minlength=16)
        expected = len(xs) / 16
        assert np.all(np.abs(counts - expected) < 0.05 * expected)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            hash_to_range(1, 0)
        with pytest.raises(ValueError):
            hash_to_range(1, -5)

    @given(st.integers(0, 2**62), st.integers(1, 2**30))
    def test_property_in_range(self, x, n):
        value = hash_to_range(x, n, salt=7)
        assert 0 <= value < n


class TestTabulationHasher:
    def test_deterministic(self):
        h1 = TabulationHasher(128, seed=4)
        h2 = TabulationHasher(128, seed=4)
        xs = np.arange(500, dtype=np.int64)
        assert np.array_equal(h1(xs), h2(xs))

    def test_seed_changes_function(self):
        xs = np.arange(500, dtype=np.int64)
        assert not np.array_equal(
            TabulationHasher(128, seed=1)(xs), TabulationHasher(128, seed=2)(xs)
        )

    def test_scalar_matches_array(self):
        hasher = TabulationHasher(64, seed=3)
        xs = np.arange(20, dtype=np.int64)
        arr = hasher(xs)
        for i, x in enumerate(xs.tolist()):
            assert hasher(x) == int(arr[i])

    def test_range(self):
        hasher = TabulationHasher(17, seed=8)
        out = hasher(np.arange(10_000, dtype=np.int64))
        assert out.min() >= 0 and out.max() < 17

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            TabulationHasher(0)

    def test_one_shot_wrapper(self):
        assert tabulation_hash(42, 64, seed=1) == TabulationHasher(64, seed=1)(42)
