"""Tests for repro.hashing — mixing and range reduction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import (
    TabulationHasher,
    hash_to_range,
    mix_pair,
    splitmix64,
    tabulation_hash,
)


class TestSplitmix64:
    def test_known_vector(self):
        # reference value from the splitmix64 specification (seed 0 -> first output)
        assert int(splitmix64(0)) == 0xE220A8397B1DCDAF

    def test_bijection_no_collisions(self):
        xs = np.arange(100_000, dtype=np.uint64)
        hashed = splitmix64(xs)
        assert np.unique(hashed).size == xs.size

    def test_scalar_and_array_agree(self):
        xs = np.arange(32, dtype=np.uint64)
        arr = splitmix64(xs)
        for i, x in enumerate(xs.tolist()):
            assert int(splitmix64(x)) == int(arr[i])

    def test_input_not_mutated(self):
        xs = np.arange(8, dtype=np.uint64)
        before = xs.copy()
        splitmix64(xs)
        assert np.array_equal(xs, before)


class TestMixPair:
    def test_sensitive_to_both_arguments(self):
        base = int(mix_pair(1, 2))
        assert int(mix_pair(1, 3)) != base
        assert int(mix_pair(2, 2)) != base

    def test_not_symmetric(self):
        assert int(mix_pair(10, 20)) != int(mix_pair(20, 10))


class TestHashToRange:
    def test_range_bounds(self):
        xs = np.arange(10_000, dtype=np.int64)
        for n in (1, 2, 7, 100, 1 << 20):
            out = hash_to_range(xs, n, salt=3)
            assert out.min() >= 0 and out.max() < n

    def test_n_one_maps_to_zero(self):
        assert hash_to_range(12345, 1) == 0

    def test_scalar_matches_array(self):
        xs = np.arange(64, dtype=np.int64)
        arr = hash_to_range(xs, 97, salt=5)
        for i, x in enumerate(xs.tolist()):
            assert hash_to_range(x, 97, salt=5) == int(arr[i])

    def test_salt_changes_function(self):
        xs = np.arange(1000, dtype=np.int64)
        a = hash_to_range(xs, 256, salt=1)
        b = hash_to_range(xs, 256, salt=2)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self):
        xs = np.arange(200_000, dtype=np.int64)
        out = hash_to_range(xs, 16, salt=9)
        counts = np.bincount(out, minlength=16)
        expected = len(xs) / 16
        assert np.all(np.abs(counts - expected) < 0.05 * expected)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            hash_to_range(1, 0)
        with pytest.raises(ValueError):
            hash_to_range(1, -5)

    @given(st.integers(0, 2**62), st.integers(1, 2**30))
    def test_property_in_range(self, x, n):
        value = hash_to_range(x, n, salt=7)
        assert 0 <= value < n


class TestScalarFastPaths:
    """The pure-Python scalar branches must match the uint64 array path bitwise.

    The fast kernels batch-hash with the array path while the reference
    loops hash page-at-a-time with the scalar path; any divergence breaks
    the bit-for-bit equivalence contract (tests/sim/test_kernels.py).
    """

    #: edge cases: zero, small, high-bit-set, max-uint64, typical page ids
    XS = [0, 1, 2**31, 2**63 - 1, 2**64 - 1, 0xDEADBEEF, 1_234_567_890_123_456_789]

    def test_splitmix64_scalar_type_and_value(self):
        arr = splitmix64(np.asarray(self.XS, dtype=np.uint64))
        for i, x in enumerate(self.XS):
            out = splitmix64(x)
            assert isinstance(out, np.uint64)
            assert int(out) == int(arr[i])

    def test_splitmix64_accepts_numpy_scalars(self):
        assert int(splitmix64(np.uint64(42))) == int(splitmix64(42))
        assert int(splitmix64(np.int64(42))) == int(splitmix64(42))

    def test_mix_pair_scalar_matches_array(self):
        for salt in (0, 7, 2**40, 2**64 - 1):
            arr = mix_pair(np.uint64(salt), np.asarray(self.XS, dtype=np.uint64))
            for i, x in enumerate(self.XS):
                out = mix_pair(salt, x)
                assert isinstance(out, np.uint64)
                assert int(out) == int(arr[i])

    def test_hash_to_range_scalar_matches_array(self):
        # n < 2^32: the array path's 32-bit-split reduction overflows beyond
        # that, and no cache is remotely that large
        for n in (1, 2, 97, 1 << 20, (1 << 31) + 3):
            arr = hash_to_range(np.asarray(self.XS, dtype=np.uint64), n, salt=11)
            for i, x in enumerate(self.XS):
                out = hash_to_range(x, n, salt=11)
                assert isinstance(out, int)  # plain int: feeds list indexing
                assert out == int(arr[i])

    def test_negative_int64_pages_agree(self):
        # int64 arrays reinterpret negatives as large uint64s; the scalar
        # path must mask the same way
        xs = np.asarray([-1, -2**31, -2**63], dtype=np.int64)
        arr = hash_to_range(xs, 257, salt=3)
        for i, x in enumerate(xs.tolist()):
            assert hash_to_range(x, 257, salt=3) == int(arr[i])


class TestTabulationHasher:
    def test_deterministic(self):
        h1 = TabulationHasher(128, seed=4)
        h2 = TabulationHasher(128, seed=4)
        xs = np.arange(500, dtype=np.int64)
        assert np.array_equal(h1(xs), h2(xs))

    def test_seed_changes_function(self):
        xs = np.arange(500, dtype=np.int64)
        assert not np.array_equal(
            TabulationHasher(128, seed=1)(xs), TabulationHasher(128, seed=2)(xs)
        )

    def test_scalar_matches_array(self):
        hasher = TabulationHasher(64, seed=3)
        xs = np.arange(20, dtype=np.int64)
        arr = hasher(xs)
        for i, x in enumerate(xs.tolist()):
            assert hasher(x) == int(arr[i])

    def test_range(self):
        hasher = TabulationHasher(17, seed=8)
        out = hasher(np.arange(10_000, dtype=np.int64))
        assert out.min() >= 0 and out.max() < 17

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            TabulationHasher(0)

    def test_one_shot_wrapper(self):
        assert tabulation_hash(42, 64, seed=1) == TabulationHasher(64, seed=1)(42)
