"""Differential tests: PolicyStore vs the offline simulator (hypothesis).

The serving layer's correctness anchor is that every GET/PUT maps to
exactly one ``CachePolicy.access`` step and DEL maps to none. So for
*any* op mix, replaying the ops through a :class:`PolicyStore` and
running the GET/PUT key subsequence through the offline
:mod:`repro.sim.engine` reference with the same policy/capacity/seed must
agree on hit, miss and eviction counts — bit for bit, including for the
randomized policies, whose seeds pin their coin flips.

The parity test runs against **every registered online policy** — the
whole adaptive zoo (SLRU/ARC/LRFU/TinyLFU/the sketch hybrid) included —
via the same auto-discovery the conformance suite uses, so a new
``register_policy`` call is automatically pulled into serving parity.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.service.store import PolicyStore
from repro.sim.engine import run_policy
from tests.helpers import all_online_policy_factories, make_seeded_policy

POLICIES = sorted(all_online_policy_factories(8))

capacities = st.integers(min_value=3, max_value=16)

ops = st.lists(
    st.tuples(st.sampled_from(["GET", "PUT", "DEL"]), st.integers(min_value=0, max_value=24)),
    max_size=80,
)


def make(name: str, capacity: int, seed: int):
    """Build a seeded registry policy; assume-away invalid tiny sizings."""
    try:
        return make_seeded_policy(name, capacity, seed)
    except ConfigurationError:
        assume(False)


def drive_store(policy, op_list):
    """Apply the op mix through a PolicyStore; returns (store, snapshot)."""

    async def scenario():
        store = PolicyStore(policy)
        for op, key in op_list:
            if op == "GET":
                await store.get(key)
            elif op == "PUT":
                await store.put(key, f"v{key}")
            else:
                await store.delete(key)
        snapshot = await store.stats()
        problems = await store.verify()
        return store, snapshot, problems

    return asyncio.run(scenario())


@pytest.mark.parametrize("name", POLICIES)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op_list=ops, capacity=capacities, seed=st.integers(0, 7))
def test_store_agrees_with_offline_engine(name, op_list, capacity, seed):
    _, snapshot, problems = drive_store(make(name, capacity, seed), op_list)
    assert problems == []

    accesses = [key for op, key in op_list if op != "DEL"]
    assert snapshot["accesses"] == len(accesses)
    if not accesses:
        assert snapshot["hits"] == snapshot["misses"] == snapshot["evictions"] == 0
        return

    reference = make(name, capacity, seed)
    row = run_policy(reference, np.asarray(accesses, dtype=np.int64))
    assert snapshot["hits"] == row["accesses"] - row["misses"]
    assert snapshot["misses"] == row["misses"]
    assert snapshot["resident"] == len(reference)
    assert snapshot["evictions"] == row["misses"] - len(reference)


@pytest.mark.parametrize("name", ["heatsink", "sketch-heatsink", "tinylfu", "arc"])
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op_list=ops, capacity=capacities, seed=st.integers(0, 7))
def test_del_never_touches_residency(name, op_list, capacity, seed):
    """DELs interleaved anywhere must not change what is resident."""
    with_dels = drive_store(make(name, capacity, seed), op_list)[1]
    without_dels = drive_store(
        make(name, capacity, seed), [(op, k) for op, k in op_list if op != "DEL"]
    )[1]
    for field in ("hits", "misses", "resident", "evictions"):
        assert with_dels[field] == without_dels[field]
