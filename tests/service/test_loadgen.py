"""End-to-end: loadgen replay vs offline SimResult (tier-1, localhost only)."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.service.loadgen import replay_trace
from repro.service.server import running_server
from repro.service.store import PolicyStore


def make(name, capacity, *, seed):
    try:
        return make_policy(name, capacity, seed=seed)
    except TypeError:
        return make_policy(name, capacity)


def serve_and_replay(policy, trace, **kwargs):
    async def scenario():
        async with running_server(PolicyStore(policy)) as server:
            return await replay_trace(
                trace, host="127.0.0.1", port=server.port, **kwargs
            )

    return asyncio.run(scenario())


class TestOfflineParity:
    """Pipelined replay reaches the policy in trace order, so the served
    hit rate must equal the offline ``run`` hit rate *exactly* — the
    acceptance criterion of the serving subsystem."""

    @pytest.mark.parametrize("name", ["heatsink", "lru", "2-random"])
    def test_pipeline_replay_matches_simresult(self, name):
        trace = repro.zipf_trace(1024, 8_000, alpha=1.0, seed=21)
        offline = make(name, 256, seed=9).run(trace)
        report = serve_and_replay(
            make(name, 256, seed=9), trace, mode="pipeline", concurrency=64
        )
        assert report.ops == len(trace)
        assert report.errors == 0
        assert report.hits == offline.num_hits  # client-observed
        assert report.server_stats["hits"] == offline.num_hits  # STATS-observed
        assert report.server_stats["hit_rate"] == offline.hit_rate
        assert report.server_stats["misses"] == offline.num_misses

    def test_parity_holds_for_npz_round_trip(self, tmp_path):
        trace = repro.uniform_trace(300, 3_000, seed=4)
        path = repro.save_trace(trace, tmp_path / "t.npz")
        loaded = repro.load_trace(path)
        offline = make("heatsink", 128, seed=2).run(loaded)
        report = serve_and_replay(make("heatsink", 128, seed=2), loaded)
        assert report.server_stats["hit_rate"] == offline.hit_rate


class TestBatchedAndMultiConnection:
    def test_batched_pipeline_replay_keeps_exact_parity(self):
        trace = repro.zipf_trace(1024, 8_000, alpha=1.0, seed=21)
        offline = make("heatsink", 256, seed=9).run(trace)
        report = serve_and_replay(
            make("heatsink", 256, seed=9),
            trace,
            mode="pipeline",
            concurrency=16,
            batch=32,
        )
        assert report.ops == len(trace)
        assert report.errors == 0
        assert report.batch == 32
        assert report.hits == offline.num_hits
        assert report.server_stats["hit_rate"] == offline.hit_rate

    def test_binary_frame_replay_keeps_exact_parity(self):
        trace = repro.zipf_trace(512, 4_000, alpha=1.0, seed=6)
        offline = make("lru", 128, seed=0).run(trace)
        report = serve_and_replay(
            make("lru", 128, seed=0), trace, frame="binary", batch=16
        )
        assert report.errors == 0
        assert report.frame == "binary"
        assert report.server_stats["hits"] == offline.num_hits

    def test_multiple_connections_complete_and_report_per_connection(self):
        trace = repro.zipf_trace(512, 4_000, alpha=1.0, seed=5)
        report = serve_and_replay(
            make("heatsink", 256, seed=2),
            trace,
            mode="pipeline",
            concurrency=8,
            connections=2,
        )
        assert report.ops == len(trace)
        assert report.errors == 0
        assert report.connections == 2
        assert len(report.per_connection) == 2
        assert sum(c["ops"] for c in report.per_connection) == len(trace)
        for conn in report.per_connection:
            assert conn["ops"] > 0 and conn["ops_per_second"] > 0
        assert "conn" in report.summary()
        # every access still reached the shared policy exactly once
        assert report.server_stats["accesses"] == len(trace)

    def test_connections_rejected_in_workers_mode(self):
        trace = repro.uniform_trace(16, 10, seed=0)
        with pytest.raises(ConfigurationError):
            serve_and_replay(
                make("lru", 8, seed=0), trace, mode="workers", connections=2
            )

    def test_bad_batch_rejected(self):
        trace = repro.uniform_trace(16, 10, seed=0)
        with pytest.raises(ConfigurationError):
            serve_and_replay(make("lru", 8, seed=0), trace, batch=0)

    def test_bad_frame_rejected(self):
        trace = repro.uniform_trace(16, 10, seed=0)
        with pytest.raises(ConfigurationError):
            serve_and_replay(make("lru", 8, seed=0), trace, frame="carrier-pigeon")


class TestWorkersMode:
    def test_concurrent_workers_complete_and_count(self):
        trace = repro.zipf_trace(512, 4_000, alpha=1.0, seed=3)
        report = serve_and_replay(
            make("heatsink", 256, seed=1), trace, mode="workers", concurrency=8
        )
        assert report.ops == len(trace)
        assert report.errors == 0
        # every access reached the shared policy exactly once
        assert report.server_stats["accesses"] == len(trace)
        assert report.server_stats["connections_total"] >= 8
        # statistically close to the offline rate even though the
        # interleaving is nondeterministic
        offline = make("heatsink", 256, seed=1).run(trace)
        assert abs(report.server_stats["hit_rate"] - offline.hit_rate) < 0.05

    def test_more_workers_than_accesses(self):
        trace = repro.uniform_trace(16, 5, seed=0)
        report = serve_and_replay(
            make("lru", 8, seed=0), trace, mode="workers", concurrency=32
        )
        assert report.ops == 5


class TestValidation:
    def test_bad_mode_rejected(self):
        trace = repro.uniform_trace(16, 10, seed=0)
        with pytest.raises(ConfigurationError):
            serve_and_replay(make("lru", 8, seed=0), trace, mode="warp-speed")

    def test_bad_concurrency_rejected(self):
        trace = repro.uniform_trace(16, 10, seed=0)
        with pytest.raises(ConfigurationError):
            serve_and_replay(make("lru", 8, seed=0), trace, concurrency=0)

    def test_report_summary_renders(self):
        trace = repro.uniform_trace(64, 500, seed=1)
        report = serve_and_replay(make("heatsink", 32, seed=1), trace)
        text = report.summary()
        assert "ops" in text and "hit" in text and "latency" in text


class TestServerDelta:
    def test_delta_matches_client_counts_on_fresh_server(self):
        trace = repro.zipf_trace(256, 2_000, alpha=1.0, seed=6)
        report = serve_and_replay(make("lru", 64, seed=0), trace)
        delta = report.server_delta
        assert delta["accesses"] == report.ops
        assert delta["hits"] == report.hits
        assert delta["gets"] == report.ops
        assert delta["hit_rate"] == pytest.approx(report.hit_rate)

    def test_delta_isolates_this_run_on_a_warm_server(self):
        trace = repro.uniform_trace(64, 800, seed=2)

        async def scenario():
            async with running_server(PolicyStore(make("lru", 32, seed=0))) as server:
                first = await replay_trace(trace, host="127.0.0.1", port=server.port)
                second = await replay_trace(trace, host="127.0.0.1", port=server.port)
            return first, second

        first, second = asyncio.run(scenario())
        # cumulative STATS double, but each delta covers only its own run
        assert second.server_stats["accesses"] == 2 * len(trace)
        assert first.server_delta["accesses"] == len(trace)
        assert second.server_delta["accesses"] == len(trace)
        assert second.server_delta["hits"] == second.hits

    def test_summary_shows_delta_line(self):
        trace = repro.uniform_trace(64, 500, seed=1)
        report = serve_and_replay(make("heatsink", 32, seed=1), trace)
        text = report.summary()
        assert "server hit :" in text  # backward-compatible line retained
        assert "accesses this run" in text

    def test_progress_reporting_does_not_disturb_parity(self, capsys):
        trace = repro.zipf_trace(512, 4_000, alpha=1.0, seed=21)
        offline = make("heatsink", 128, seed=9).run(trace)
        report = serve_and_replay(
            make("heatsink", 128, seed=9), trace, report_interval=0.05
        )
        assert report.server_stats["hit_rate"] == offline.hit_rate
        out = capsys.readouterr().out
        assert "progress" in out

    def test_negative_report_interval_rejected(self):
        trace = repro.uniform_trace(16, 10, seed=0)
        with pytest.raises(ConfigurationError):
            serve_and_replay(make("lru", 8, seed=0), trace, report_interval=-1.0)
