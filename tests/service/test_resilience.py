"""Client resilience and server backpressure.

Covers the hang-fix satellite (every awaited connect/read has a default
timeout surfaced as ServiceError), idempotency-aware retry rules, the
reconnecting wrapper, overload shedding, the in-flight window, and
slow-client write timeouts.
"""

from __future__ import annotations

import asyncio
import itertools

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.service.client import DEFAULT_TIMEOUT, ResilientClient, RetryPolicy, ServiceClient
from repro.service.server import CacheServer, running_server
from repro.service.store import PolicyStore


def run(coro):
    return asyncio.run(coro)


def make_store(capacity=8):
    return PolicyStore(repro.LRUCache(capacity))


class silent_server:
    """Accepts TCP connections and never answers — the pathological peer."""

    def __init__(self):
        self._server = None
        self._blockers = []
        self.port = None

    async def __aenter__(self):
        async def handler(reader, writer):
            blocker = asyncio.Event()
            self._blockers.append(blocker)
            await blocker.wait()

        self._server = await asyncio.start_server(handler, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        for blocker in self._blockers:
            blocker.set()
        self._server.close()
        await self._server.wait_closed()


class TestTimeouts:
    """The fix for `connect`/`get_window` hanging forever."""

    def test_clients_have_a_default_timeout(self):
        # the guard must be on by default — an unconfigured client can
        # no longer hang forever on an unresponsive peer
        assert DEFAULT_TIMEOUT is not None and DEFAULT_TIMEOUT > 0

        async def scenario():
            async with running_server(make_store()) as server:
                client = await ServiceClient.connect("127.0.0.1", server.port)
                assert client.timeout == DEFAULT_TIMEOUT
                await client.close()

        run(scenario())

    def test_request_to_silent_server_times_out(self):
        async def scenario():
            async with silent_server() as peer:
                async with await ServiceClient.connect(
                    "127.0.0.1", peer.port, timeout=0.05
                ) as client:
                    with pytest.raises(ServiceTimeout):
                        await client.get(1)

        run(scenario())

    def test_get_window_to_silent_server_times_out(self):
        async def scenario():
            async with silent_server() as peer:
                async with await ServiceClient.connect(
                    "127.0.0.1", peer.port, timeout=0.05
                ) as client:
                    with pytest.raises(ServiceTimeout):
                        await client.get_window([1, 2, 3])

        run(scenario())

    def test_timeout_is_a_service_error(self):
        # callers catching the documented ServiceError must see timeouts too
        assert issubclass(ServiceTimeout, ServiceError)
        assert issubclass(ServiceTimeout, TimeoutError)

    def test_connect_refused_is_service_error(self):
        async def scenario():
            async with running_server(make_store()) as server:
                free_port = server.port
            with pytest.raises(ServiceError):
                await ServiceClient.connect("127.0.0.1", free_port, timeout=0.5)

        run(scenario())


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_backoffs_start_at_base_and_stay_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.2, seed=1)
        delays = list(itertools.islice(policy.backoffs(), 50))
        assert delays[0] == 0.01
        assert all(0.01 <= d <= 0.2 for d in delays[1:])

    def test_seeded_backoffs_are_reproducible(self):
        policy = RetryPolicy(seed=42)
        a = list(itertools.islice(policy.backoffs(), 20))
        b = list(itertools.islice(policy.backoffs(), 20))
        assert a == b

    def test_backoffs_jitter_grows_from_previous_delay(self):
        # decorrelated jitter must eventually explore above 3 * base
        policy = RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=10.0, seed=3)
        delays = list(itertools.islice(policy.backoffs(), 200))
        assert max(delays) > 0.03


class flaky_server:
    """Kills the first ``failures`` connections after one read, then serves."""

    def __init__(self, store, failures):
        self.store = store
        self.failures = failures
        self.connections = 0
        self._inner = CacheServer(store)
        self._front = None
        self.port = None

    async def __aenter__(self):
        await self._inner.start()

        async def handler(reader, writer):
            self.connections += 1
            if self.connections <= self.failures:
                await reader.readline()  # swallow one request, then vanish
                writer.transport.abort()
                return
            # transparent relay to the real server
            upstream_r, upstream_w = await asyncio.open_connection("127.0.0.1", self._inner.port)

            async def pump(src, dst):
                try:
                    while chunk := await src.read(4096):
                        dst.write(chunk)
                        await dst.drain()
                except OSError:
                    pass

            await asyncio.gather(pump(reader, upstream_w), pump(upstream_r, writer))

        self._front = await asyncio.start_server(handler, "127.0.0.1", 0)
        self.port = self._front.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        self._front.close()
        await self._front.wait_closed()
        await self._inner.stop()


class TestResilientClient:
    def retry(self, **kwargs):
        defaults = dict(max_attempts=4, base_delay=0.005, max_delay=0.02, seed=0)
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_get_retries_through_connection_failures(self):
        async def scenario():
            async with flaky_server(make_store(), failures=2) as peer:
                async with ResilientClient(
                    "127.0.0.1", peer.port, retry=self.retry(), timeout=0.5
                ) as client:
                    response = await client.get(1)
            return response, client.counters

        response, counters = run(scenario())
        assert response["ok"] is True
        assert counters.retries == 2
        assert counters.connects == 3  # original + 2 reconnects
        assert counters.reconnects == 2
        assert counters.failures == 0

    def test_put_not_retried_by_default(self):
        async def scenario():
            async with flaky_server(make_store(), failures=1) as peer:
                async with ResilientClient(
                    "127.0.0.1", peer.port, retry=self.retry(), timeout=0.5
                ) as client:
                    with pytest.raises(ServiceError):
                        await client.put(1, "v")
            return client.counters

        counters = run(scenario())
        assert counters.retries == 0
        assert counters.failures == 1

    def test_put_retried_with_opt_in(self):
        async def scenario():
            async with flaky_server(make_store(), failures=1) as peer:
                async with ResilientClient(
                    "127.0.0.1", peer.port, retry=self.retry(), timeout=0.5, retry_unsafe=True
                ) as client:
                    response = await client.put(1, "v")
            return response, client.counters

        response, counters = run(scenario())
        assert response["ok"] is True
        assert counters.retries == 1

    def test_per_call_idempotent_override(self):
        async def scenario():
            async with flaky_server(make_store(), failures=1) as peer:
                async with ResilientClient(
                    "127.0.0.1", peer.port, retry=self.retry(), timeout=0.5
                ) as client:
                    return await client.delete(1, idempotent=True), client.counters

        response, counters = run(scenario())
        assert response["ok"] is True
        assert counters.retries == 1

    def test_exhausted_attempts_raise_last_error(self):
        async def scenario():
            async with flaky_server(make_store(), failures=99) as peer:
                async with ResilientClient(
                    "127.0.0.1", peer.port, retry=self.retry(max_attempts=3), timeout=0.2
                ) as client:
                    with pytest.raises(ServiceError):
                        await client.get(1)
            return client.counters

        counters = run(scenario())
        assert counters.attempts == 3
        assert counters.failures == 1

    def test_window_retry_completes_with_correct_responses(self):
        async def scenario():
            async with flaky_server(make_store(4), failures=1) as peer:
                async with ResilientClient(
                    "127.0.0.1", peer.port, retry=self.retry(), timeout=0.5
                ) as client:
                    return await client.get_window([1, 1, 2])

        responses = run(scenario())
        assert [r["ok"] for r in responses] == [True, True, True]
        assert len(responses) == 3


class TestOverload:
    def test_excess_connection_rejected_fast(self):
        async def scenario():
            async with running_server(make_store(), max_connections=1) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as holder:
                    await holder.ping()  # connection is established and counted
                    async with await ServiceClient.connect(
                        "127.0.0.1", server.port, timeout=1.0
                    ) as excess:
                        response = await excess.get(1)
                assert server.store.metrics.rejected == 1
            return response

        response = run(scenario())
        assert response["ok"] is False
        assert response["code"] == "overloaded"

    def test_resilient_client_rides_out_overload(self):
        async def scenario():
            async with running_server(make_store(), max_connections=1) as server:
                holder = await ServiceClient.connect("127.0.0.1", server.port)
                await holder.ping()

                async def release_soon():
                    await asyncio.sleep(0.05)
                    await holder.close()

                releaser = asyncio.create_task(release_soon())
                async with ResilientClient(
                    "127.0.0.1",
                    server.port,
                    retry=RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.05, seed=0),
                    timeout=1.0,
                ) as client:
                    # PUT is not idempotent, but overload rejections happen
                    # before the request is read, so it retries anyway
                    response = await client.put(7, "v")
                await releaser
            return response, client.counters

        response, counters = run(scenario())
        assert response["ok"] is True
        assert counters.overloaded >= 1

    def test_overload_exhaustion_raises_service_overloaded(self):
        async def scenario():
            async with running_server(make_store(), max_connections=1) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as holder:
                    await holder.ping()
                    async with ResilientClient(
                        "127.0.0.1",
                        server.port,
                        retry=RetryPolicy(max_attempts=2, base_delay=0.005, seed=0),
                        timeout=0.5,
                    ) as client:
                        with pytest.raises(ServiceOverloaded):
                            await client.get(1)
                    return client.counters

        counters = run(scenario())
        assert counters.overloaded == 2
        assert counters.failures == 1


class TestBackpressure:
    def test_small_inflight_window_preserves_order_and_parity(self):
        trace = repro.zipf_trace(64, 600, alpha=1.0, seed=5)
        offline = repro.LRUCache(32).run(trace)

        async def scenario():
            store = PolicyStore(repro.LRUCache(32))
            async with running_server(store, max_inflight=2) as server:
                async with await ServiceClient.connect(
                    "127.0.0.1", server.port, timeout=5.0
                ) as client:
                    hits = 0
                    pages = trace.pages.tolist()
                    for lo in range(0, len(pages), 64):  # window >> max_inflight
                        for r in await client.get_window(pages[lo : lo + 64]):
                            hits += r["hit"]
            return hits

        assert run(scenario()) == offline.num_hits

    def test_slow_client_dropped_after_write_timeout(self):
        async def scenario():
            store = make_store(4)
            async with running_server(store, write_timeout=0.1) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                # park a large payload, then pipeline GETs for it without
                # ever reading: the server's drain() must eventually wedge
                big = "x" * 900_000
                writer.write(
                    (f'{{"op":"PUT","key":1,"value":"{big}"}}\n').encode()
                    + b'{"op":"GET","key":1}\n' * 64
                )
                await writer.drain()
                await asyncio.sleep(1.5)  # never read; let the deadline fire
                assert store.metrics.write_timeouts >= 1
                writer.close()

        run(scenario())

    def test_server_validates_backpressure_knobs(self):
        with pytest.raises(ConfigurationError):
            CacheServer(make_store(), max_connections=0)
        with pytest.raises(ConfigurationError):
            CacheServer(make_store(), max_inflight=0)
        with pytest.raises(ConfigurationError):
            CacheServer(make_store(), write_timeout=0)
