"""Open-loop SLO loadgen: arrival schedules, the report, live replays."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

import repro
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.service.openloop import (
    MAX_LAG_SECONDS,
    SLOReport,
    arrival_schedule,
    open_loop_replay,
    run_open_loop,
)
from repro.service.server import running_server
from repro.service.store import PolicyStore


class TestArrivalSchedule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            arrival_schedule(0, 100.0)
        with pytest.raises(ConfigurationError):
            arrival_schedule(10, 0.0)
        with pytest.raises(ConfigurationError):
            arrival_schedule(10, 100.0, burst=0.5)

    def test_poisson_rate_and_monotonicity(self):
        offsets = arrival_schedule(20_000, 1000.0, seed=1)
        assert len(offsets) == 20_000
        assert np.all(np.diff(offsets) >= 0)
        # 20k exponential gaps: the empirical rate is within a few percent
        assert 20_000 / offsets[-1] == pytest.approx(1000.0, rel=0.05)

    def test_bursty_keeps_long_run_rate(self):
        offsets = arrival_schedule(20_000, 1000.0, burst=8.0, seed=1)
        assert np.all(np.diff(offsets) >= 0)
        assert 20_000 / offsets[-1] == pytest.approx(1000.0, rel=0.10)
        # clumps: many arrivals share an identical timestamp
        same = np.sum(np.diff(offsets) == 0.0)
        assert same > 10_000  # mean burst 8 => ~7/8 of gaps are zero

    def test_deterministic_per_seed(self):
        a = arrival_schedule(500, 2000.0, burst=4.0, seed=9)
        b = arrival_schedule(500, 2000.0, burst=4.0, seed=9)
        c = arrival_schedule(500, 2000.0, burst=4.0, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestSLOReport:
    def make_report(self, **over):
        base = dict(
            ops=100, hits=60, errors=0, seconds=1.0, rate=100.0, burst=1.0,
            connections=4, frame="ndjson", p50_ms=1.0, p90_ms=2.0, p99_ms=5.0,
            p999_ms=9.0, max_ms=12.0, mean_ms=1.5, slo_ms=10.0, violations=2,
            violation_fraction=0.02, lag_p99_ms=0.5, lag_max_ms=1.0, lag_ok=True,
        )
        base.update(over)
        return SLOReport(**base)

    def test_as_dict_is_json_able(self):
        payload = json.dumps(self.make_report().as_dict())
        loaded = json.loads(payload)
        assert loaded["violations"] == 2
        assert loaded["achieved_rate"] == pytest.approx(100.0)

    def test_summary_mentions_slo_and_lag(self):
        text = self.make_report().summary()
        assert "SLO 10ms" in text
        assert "2 violations" in text
        assert "LAGGED" not in text

    def test_lagged_run_is_flagged_loudly(self):
        text = self.make_report(lag_ok=False).summary()
        assert "GENERATOR LAGGED" in text

    def test_summary_without_slo_omits_the_line(self):
        text = self.make_report(slo_ms=None, violations=0).summary()
        assert "SLO" not in text


class TestOpenLoopReplay:
    """Live open-loop runs against an in-process server (localhost only).

    Rates are far below the server's ceiling, so these runs always keep
    schedule on any machine fast enough to run the suite at all."""

    def replay(self, trace, **kwargs):
        async def scenario():
            store = PolicyStore(make_policy("lru", 256))
            async with running_server(store) as server:
                return await open_loop_replay(
                    trace, host="127.0.0.1", port=server.port, seed=3, **kwargs
                )

        return asyncio.run(scenario())

    def test_validation(self):
        trace = repro.zipf_trace(256, 100, seed=1)
        with pytest.raises(ConfigurationError):
            self.replay(trace, rate=500.0, connections=0)
        with pytest.raises(ConfigurationError):
            self.replay(trace, rate=500.0, frame="smoke-signals")
        with pytest.raises(ConfigurationError):
            self.replay(trace, rate=500.0, slo_ms=-1.0)

    @pytest.mark.parametrize("frame", ["ndjson", "binary"])
    def test_all_requests_answered_and_counted(self, frame):
        trace = repro.zipf_trace(512, 1_500, alpha=1.0, seed=7)
        report = self.replay(trace, rate=3000.0, connections=4, frame=frame)
        assert report.ops == len(trace)
        assert report.errors == 0
        assert report.frame == frame
        # the GETs really reached the policy: server counted every access
        assert report.server_stats["accesses"] == len(trace)
        assert report.hits == report.server_stats["hits"]
        assert report.p50_ms <= report.p99_ms <= report.max_ms

    def test_latency_measured_from_scheduled_arrival(self):
        # 200 requests at a rate that takes ~2s; elapsed must cover the
        # schedule span, proving sends pace the schedule rather than
        # blasting as fast as the socket allows.
        trace = repro.zipf_trace(128, 200, seed=5)
        report = self.replay(trace, rate=100.0, connections=2)
        assert report.seconds >= 1.5
        assert report.lag_p99_ms >= 0.0

    def test_slo_accounting(self):
        trace = repro.zipf_trace(256, 800, seed=2)
        report = self.replay(trace, rate=2000.0, slo_ms=1000.0)
        assert report.slo_ms == 1000.0
        assert report.violations == 0  # a 1s SLO is unmissable on localhost
        assert report.violation_fraction == 0.0
        # the lag bound scales with the SLO: 250ms here, trivially met
        assert report.lag_ok is True

    def test_overload_shows_up_as_latency_not_fewer_ops(self):
        # burst=16 clumps arrivals into spikes; the open loop must still
        # send every request and charge the queueing to latency.
        trace = repro.zipf_trace(256, 1_000, seed=8)
        report = self.replay(trace, rate=4000.0, burst=16.0, connections=2)
        assert report.ops == len(trace)
        assert report.max_ms >= report.p50_ms

    def test_run_open_loop_sync_wrapper_owns_its_loop(self):
        # the wrapper must work with no running event loop; bad config
        # surfaces before any connection is attempted
        trace = repro.zipf_trace(64, 10, seed=1)
        with pytest.raises(ConfigurationError):
            run_open_loop(trace, host="127.0.0.1", port=1, rate=0.0)

    def test_lag_floor_constant_sane(self):
        assert 0 < MAX_LAG_SECONDS < 0.1
