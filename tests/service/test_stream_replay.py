"""Streamed replay against a live server: parity and O(chunk) plumbing."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.service.loadgen import replay_trace
from repro.service.openloop import open_loop_replay
from repro.service.server import running_server
from repro.service.store import PolicyStore
from repro.traces.streaming import ArrayTraceStream, ZipfTraceStream


def make(name, capacity, *, seed):
    try:
        return make_policy(name, capacity, seed=seed)
    except TypeError:
        return make_policy(name, capacity)


def serve_and_replay(policy, trace, **kwargs):
    async def scenario():
        async with running_server(PolicyStore(policy)) as server:
            return await replay_trace(
                trace, host="127.0.0.1", port=server.port, **kwargs
            )

    return asyncio.run(scenario())


class TestStreamedLoadgen:
    """A streamed pipeline replay reaches the policy in trace order, so it
    must keep the *exact* offline hit parity the materialized path has."""

    @pytest.mark.parametrize("name", ["heatsink", "2-random"])
    def test_streamed_replay_matches_simresult(self, name):
        stream = ZipfTraceStream(1024, 8_000, alpha=1.0, seed=21, chunk=700)
        offline = make(name, 256, seed=9).run(stream.materialize())
        report = serve_and_replay(
            make(name, 256, seed=9), stream, mode="pipeline", concurrency=64
        )
        assert report.ops == 8_000
        assert report.errors == 0
        assert report.hits == offline.num_hits
        assert report.server_stats["hits"] == offline.num_hits
        assert report.server_stats["hit_rate"] == offline.hit_rate

    def test_streamed_equals_materialized_replay(self):
        stream = ZipfTraceStream(512, 4_000, alpha=1.0, seed=6, chunk=333)
        streamed = serve_and_replay(make("heatsink", 128, seed=2), stream)
        plain = serve_and_replay(make("heatsink", 128, seed=2), stream.materialize())
        assert streamed.hits == plain.hits
        assert streamed.ops == plain.ops

    def test_batched_streamed_replay(self):
        stream = ZipfTraceStream(512, 4_000, alpha=1.0, seed=3, chunk=450)
        offline = make("heatsink", 256, seed=1).run(stream.materialize())
        report = serve_and_replay(
            make("heatsink", 256, seed=1), stream, batch=32, concurrency=16
        )
        assert report.errors == 0
        assert report.hits == offline.num_hits

    def test_window_straddles_chunk_boundaries(self):
        # chunk=7 with batch=4: nearly every request window crosses a chunk
        stream = ArrayTraceStream(
            repro.zipf_trace(64, 500, alpha=1.0, seed=8).pages, chunk=7
        )
        offline = make("lru", 32, seed=0).run(stream.materialize())
        report = serve_and_replay(make("lru", 32, seed=0), stream, batch=4)
        assert report.ops == 500
        assert report.hits == offline.num_hits

    def test_workers_mode_rejected_for_streams(self):
        stream = ZipfTraceStream(16, 100, seed=0)
        with pytest.raises(ConfigurationError, match="pipeline"):
            serve_and_replay(make("lru", 8, seed=0), stream, mode="workers")

    def test_multiple_connections_rejected_for_streams(self):
        stream = ZipfTraceStream(16, 100, seed=0)
        with pytest.raises(ConfigurationError, match="connections=1"):
            serve_and_replay(make("lru", 8, seed=0), stream, connections=2)


class TestStreamedOpenLoop:
    def _run(self, stream, **kwargs):
        async def scenario():
            async with running_server(PolicyStore(make("heatsink", 128, seed=1))) as srv:
                return await open_loop_replay(
                    stream, host="127.0.0.1", port=srv.port, **kwargs
                )

        return asyncio.run(scenario())

    def test_streamed_open_loop_smoke(self):
        stream = ZipfTraceStream(256, 2_000, alpha=1.0, seed=5, chunk=300)
        report = self._run(stream, rate=50_000.0, connections=2, slo_ms=1_000.0)
        assert report.ops == 2_000
        assert report.errors == 0
        assert report.approx_percentiles is True
        assert report.rate == 50_000.0
        assert report.p50_ms >= 0
        assert 0 <= report.violations <= 2_000
        assert report.as_dict()["approx_percentiles"] is True

    def test_materialized_open_loop_keeps_exact_percentiles(self):
        trace = repro.zipf_trace(256, 1_000, alpha=1.0, seed=5)
        report = self._run(trace, rate=50_000.0, connections=2)
        assert report.approx_percentiles is False

    def test_streamed_hit_count_matches_offline(self):
        # arrivals are paced but order is preserved per round-robin lane;
        # the *total* hits observed by the server equal the offline run
        # only when a single connection preserves global order
        stream = ZipfTraceStream(256, 1_500, alpha=1.0, seed=7, chunk=200)
        offline = make("heatsink", 128, seed=1).run(stream.materialize())
        report = self._run(stream, rate=100_000.0, connections=1)
        assert report.hits == offline.num_hits
