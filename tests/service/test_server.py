"""Server round-trips, error isolation, and lifecycle (localhost, port 0)."""

from __future__ import annotations

import asyncio
import json

import pytest

import repro
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import CacheServer, running_server
from repro.service.store import PolicyStore


def run(coro):
    return asyncio.run(coro)


def make_store(capacity=8):
    return PolicyStore(repro.LRUCache(capacity))


class TestRoundTrip:
    def test_ping_get_put_del_stats(self):
        async def scenario():
            async with running_server(make_store()) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as c:
                    assert await c.ping() is True
                    assert await c.get(1) == {"ok": True, "hit": False, "value": None}
                    assert (await c.put(1, "payload"))["hit"] is True
                    assert await c.get(1) == {"ok": True, "hit": True, "value": "payload"}
                    assert (await c.delete(1))["deleted"] is True
                    stats = await c.stats()
            assert stats["gets"] == 2
            assert stats["puts"] == 1
            assert stats["dels"] == 1
            assert stats["hits"] == 2
            assert stats["misses"] == 1
            assert stats["connections_total"] == 1

        run(scenario())

    def test_pipelined_window_preserves_order(self):
        async def scenario():
            async with running_server(make_store(4)) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as c:
                    responses = await c.get_window([1, 1, 2, 1, 3])
            return [r["hit"] for r in responses]

        assert run(scenario()) == [False, True, False, True, False]

    def test_two_connections_share_the_store(self):
        async def scenario():
            async with running_server(make_store()) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as a:
                    await a.put(5, "from-a")
                async with await ServiceClient.connect("127.0.0.1", server.port) as b:
                    return await b.get(5)

        assert run(scenario()) == {"ok": True, "hit": True, "value": "from-a"}


class TestErrorIsolation:
    def test_malformed_line_gets_error_response_and_connection_survives(self):
        async def scenario():
            async with running_server(make_store()) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                writer.write(b'{"op": "PING"}\n')
                await writer.drain()
                pong = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return error, pong

        error, pong = run(scenario())
        assert error["ok"] is False and error["code"] == "bad-request"
        assert pong == {"ok": True, "pong": True}

    @pytest.mark.parametrize(
        "line",
        [b'{"op": "EXPLODE"}\n', b'{"op": "GET", "key": "nope"}\n', b"[]\n"],
    )
    def test_bad_requests_counted_not_fatal(self, line):
        async def scenario(store):
            async with running_server(store) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(line)
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response

        store = make_store()
        response = run(scenario(store))
        assert response["ok"] is False
        assert store.metrics.errors == 1

    def test_one_bad_client_does_not_break_another(self):
        async def scenario():
            async with running_server(make_store()) as server:
                bad_reader, bad_writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                bad_writer.write(b'{"op":\n')  # garbage, then go silent
                await bad_writer.drain()
                await bad_reader.readline()  # server answers with an error

                async with await ServiceClient.connect("127.0.0.1", server.port) as good:
                    result = await good.ping()
                bad_writer.close()
                await bad_writer.wait_closed()
                return result

        assert run(scenario()) is True

    def test_abrupt_disconnect_mid_stream(self):
        async def scenario():
            async with running_server(make_store()) as server:
                _, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b'{"op": "GET", "key": 1}\n')
                await writer.drain()
                writer.close()  # vanish without reading the response
                await asyncio.sleep(0.05)
                async with await ServiceClient.connect("127.0.0.1", server.port) as c:
                    return await c.ping()

        assert run(scenario()) is True


class TestLifecycle:
    def test_ephemeral_port_assigned(self):
        async def scenario():
            server = CacheServer(make_store())
            await server.start()
            try:
                assert server.port > 0
                assert server.is_serving
            finally:
                await server.stop()
            assert not server.is_serving

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            server = CacheServer(make_store())
            await server.start()
            try:
                with pytest.raises(ServiceError):
                    await server.start()
            finally:
                await server.stop()

        run(scenario())

    def test_stop_closes_idle_connections(self):
        async def scenario():
            server = CacheServer(make_store())
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await server.stop()  # must not hang on the idle connection
            assert await reader.read() == b""  # server side closed
            writer.close()

        run(scenario())

    def test_stop_is_idempotent(self):
        async def scenario():
            server = CacheServer(make_store())
            await server.start()
            await server.stop()
            await server.stop()

        run(scenario())


class TestMetricsOp:
    def test_metrics_op_returns_parseable_exposition(self):
        from repro.obs.exposition import parse_prometheus

        async def scenario():
            async with running_server(make_store()) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as c:
                    await c.put(1, "x")
                    await c.get(1)
                    await c.get(2)
                    text = await c.metrics()
                    stats = await c.stats()
            return text, stats

        text, stats = run(scenario())
        parsed = parse_prometheus(text)
        assert parsed.value("repro_hits_total") == stats["hits"]
        assert parsed.value("repro_misses_total") == stats["misses"]
        assert parsed.value("repro_ops_total", op="get") == stats["gets"]
        assert parsed.value("repro_ops_total", op="put") == stats["puts"]
        assert parsed.value("repro_resident_pages") == stats["resident"]
        # METRICS itself is not a policy access
        assert stats["accesses"] == 3

    def test_per_op_latency_counts_match_traffic(self):
        from repro.obs.exposition import parse_prometheus

        async def scenario():
            async with running_server(make_store()) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as c:
                    for _ in range(3):
                        await c.get(1)
                    await c.put(2, "v")
                    await c.delete(2)
                    return await c.metrics()

        parsed = parse_prometheus(run(scenario()))
        assert parsed.value("repro_op_latency_seconds_count", op="get") == 3.0
        assert parsed.value("repro_op_latency_seconds_count", op="put") == 1.0
        assert parsed.value("repro_op_latency_seconds_count", op="del") == 1.0
        # combined histogram counts every answered request, METRICS included
        assert parsed.value("repro_request_latency_seconds_count") >= 5.0

    def test_metrics_via_resilient_client(self):
        from repro.service.client import ResilientClient

        async def scenario():
            async with running_server(make_store()) as server:
                async with ResilientClient("127.0.0.1", server.port) as c:
                    await c.get(7)
                    return await c.metrics()

        assert "repro_misses_total 1" in run(scenario())
