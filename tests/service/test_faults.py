"""FaultPlan / FaultStream / ChaosProxy unit tests."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.errors import ConfigurationError, ServiceError
from repro.service.client import ServiceClient
from repro.service.faults import FaultPlan, running_proxy
from repro.service.server import running_server
from repro.service.store import PolicyStore


def run(coro):
    return asyncio.run(coro)


def make_store(capacity=8):
    return PolicyStore(repro.LRUCache(capacity))


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"corrupt_rate": 1.5},
            {"drop_rate": 0.6, "reset_rate": 0.6},  # rates sum past 1
            {"delay_s": -1.0},
            {"direction": "sideways"},
        ],
    )
    def test_bad_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_fault_rate_sums_categories(self):
        plan = FaultPlan(delay_rate=0.1, drop_rate=0.2, corrupt_rate=0.3)
        assert plan.fault_rate == pytest.approx(0.6)

    def test_stream_is_deterministic_per_connection_and_direction(self):
        plan = FaultPlan(seed=3, drop_rate=0.3, corrupt_rate=0.3)
        a = [plan.stream(0, "c2s").decide() for _ in range(1)]  # fresh stream
        first = [plan.stream(0, "c2s") for _ in range(2)]
        decisions = [[s.decide() for _ in range(200)] for s in first]
        assert decisions[0] == decisions[1]
        assert a[0] == decisions[0][0]
        other_conn = [plan.stream(1, "c2s").decide() for _ in range(200)]
        other_dir = [plan.stream(0, "s2c").decide() for _ in range(200)]
        assert decisions[0] != other_conn
        assert decisions[0] != other_dir

    def test_direction_filter(self):
        plan = FaultPlan(seed=0, drop_rate=1.0, direction="s2c")
        assert all(plan.stream(0, "c2s").decide() == "forward" for _ in range(20))
        assert plan.stream(0, "s2c").decide() == "drop"

    def test_corrupt_preserves_framing(self):
        stream = FaultPlan(seed=1, corrupt_rate=1.0).stream(0, "c2s")
        for _ in range(100):
            mangled = stream.corrupt(b'{"op":"GET","key":123}\n')
            assert mangled.endswith(b"\n")
            assert mangled.count(b"\n") == 1  # still exactly one frame

    def test_truncate_returns_proper_prefix(self):
        stream = FaultPlan(seed=1, truncate_rate=1.0).stream(0, "c2s")
        frame = b'{"op":"PING"}\n'
        for _ in range(50):
            prefix = stream.truncate(frame)
            assert len(prefix) < len(frame)
            assert frame.startswith(prefix)


class TestChaosProxy:
    def test_zero_fault_plan_is_transparent(self):
        async def scenario():
            async with running_server(make_store(4)) as server:
                async with running_proxy("127.0.0.1", server.port, FaultPlan()) as proxy:
                    async with await ServiceClient.connect(
                        "127.0.0.1", proxy.port, timeout=2.0
                    ) as client:
                        hits = [r["hit"] for r in await client.get_window([1, 1, 2, 1, 3])]
                        assert await client.ping() is True
                    assert proxy.stats.faults == 0
                    assert proxy.stats.connections == 1
                    assert proxy.stats.frames > 0
            return hits

        assert run(scenario()) == [False, True, False, True, False]

    def test_dropped_request_times_out_client(self):
        async def scenario():
            plan = FaultPlan(seed=0, drop_rate=1.0, direction="c2s")
            async with running_server(make_store()) as server:
                async with running_proxy("127.0.0.1", server.port, plan) as proxy:
                    async with await ServiceClient.connect(
                        "127.0.0.1", proxy.port, timeout=0.1
                    ) as client:
                        with pytest.raises(ServiceError, match="timed out"):
                            await client.get(1)
                    assert proxy.stats.drops == 1

        run(scenario())

    def test_reset_surfaces_as_service_error(self):
        async def scenario():
            plan = FaultPlan(seed=0, reset_rate=1.0, direction="c2s")
            async with running_server(make_store()) as server:
                async with running_proxy("127.0.0.1", server.port, plan) as proxy:
                    async with await ServiceClient.connect(
                        "127.0.0.1", proxy.port, timeout=1.0
                    ) as client:
                        with pytest.raises(ServiceError):
                            await client.get(1)
                    assert proxy.stats.resets == 1

        run(scenario())

    def test_corrupted_response_is_service_error_not_crash(self):
        async def scenario():
            plan = FaultPlan(seed=2, corrupt_rate=1.0, direction="s2c")
            async with running_server(make_store()) as server:
                async with running_proxy("127.0.0.1", server.port, plan) as proxy:
                    async with await ServiceClient.connect(
                        "127.0.0.1", proxy.port, timeout=1.0
                    ) as client:
                        # a corrupted response either fails JSON parsing
                        # (ServiceError) or still parses as some dict
                        try:
                            result = await client.get(1)
                            assert isinstance(result, dict)
                        except ServiceError:
                            pass
                    assert proxy.stats.corruptions >= 1

        run(scenario())

    def test_upstream_down_closes_connection_gracefully(self):
        async def scenario():
            async with running_server(make_store()) as server:
                dead_port = server.port
            # server stopped: upstream connect now fails
            async with running_proxy("127.0.0.1", dead_port, FaultPlan()) as proxy:
                with pytest.raises(ServiceError):
                    client = await ServiceClient.connect("127.0.0.1", proxy.port, timeout=0.5)
                    try:
                        await client.ping()
                    finally:
                        await client.close()
                assert proxy.stats.upstream_failures == 1

        run(scenario())
