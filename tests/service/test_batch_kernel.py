"""Batch kernels in the serving hot path: MGET/MPUT groups as one kernel call.

`PolicyStore` routes batched operations of at least ``BATCH_KERNEL_MIN``
keys through the policy's fast kernel (one call, one lock hold) instead
of the per-key loop. Because kernels are bit-for-bit continuations of
the reference access loop, every observable — hit flags, payload
bookkeeping, metrics totals, policy state, offline parity — must be
identical on both paths; only the ``kernel_batches`` counter tells them
apart. These tests pin that equivalence and every fallback edge.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro.core.registry import make_policy
from repro.obs import hooks
from repro.obs.sinks import ListSink
from repro.service.loadgen import replay_trace
from repro.service.server import running_server
from repro.service.store import BATCH_KERNEL_MIN, PolicyStore


def make(name, capacity, *, seed):
    try:
        return make_policy(name, capacity, seed=seed)
    except TypeError:
        return make_policy(name, capacity)


def serve_and_replay(store, trace, **kwargs):
    async def scenario():
        async with running_server(store) as server:
            return await replay_trace(
                trace, host="127.0.0.1", port=server.port, **kwargs
            )

    return asyncio.run(scenario())


def _batches(seed, *, count=6, size=4 * BATCH_KERNEL_MIN, universe=512):
    """Key batches over a small universe — duplicates within a batch are
    near-certain, which is exactly the ordering case worth pinning."""
    rng = np.random.default_rng(seed)
    return [rng.integers(0, universe, size=size).tolist() for _ in range(count)]


def _drive_get_many(store, batches):
    async def go():
        return [await store.get_many(keys) for keys in batches]

    return asyncio.run(go())


def _drive_put_many(store, batches):
    async def go():
        out = []
        for b, keys in enumerate(batches):
            values = [f"payload-{b}-{i}" for i in range(len(keys))]
            out.append(await store.put_many(keys, values))
        return out

    return asyncio.run(go())


def _paired_stores(name="heatsink", capacity=256, seed=9):
    kernel = PolicyStore(make(name, capacity, seed=seed), batch_kernel=True)
    loop = PolicyStore(make(name, capacity, seed=seed), batch_kernel=False)
    return kernel, loop


#: deterministic snapshot fields — everything except wall-clock noise
#: (uptime, latency windows) and ``kernel_batches`` itself
_COUNTER_FIELDS = (
    "accesses", "gets", "puts", "dels", "hits", "misses", "hit_rate",
    "evictions", "resident", "policy", "capacity",
)


def _comparable_snapshot(store):
    snap = asyncio.run(store.stats())
    return {field: snap[field] for field in _COUNTER_FIELDS}


class TestStoreParity:
    """Kernel path vs per-key loop on identical stores: everything but
    ``kernel_batches`` must match."""

    def test_get_many_matches_per_key_loop(self):
        kernel, loop = _paired_stores()
        batches = _batches(1)
        assert _drive_get_many(kernel, batches) == _drive_get_many(loop, batches)
        assert kernel.metrics.kernel_batches == len(batches)
        assert loop.metrics.kernel_batches == 0
        assert kernel.policy.contents() == loop.policy.contents()
        assert _comparable_snapshot(kernel) == _comparable_snapshot(loop)

    def test_put_many_matches_and_stores_payloads(self):
        kernel, loop = _paired_stores()
        batches = _batches(2)
        assert _drive_put_many(kernel, batches) == _drive_put_many(loop, batches)
        assert kernel.metrics.kernel_batches == len(batches)
        assert kernel._values == loop._values
        # resident keys must serve their last-written payload back
        follow = [sorted(kernel.policy.contents())[: 2 * BATCH_KERNEL_MIN]]
        assert _drive_get_many(kernel, follow) == _drive_get_many(loop, follow)

    def test_duplicate_keys_within_a_batch_keep_access_order(self):
        kernel, loop = _paired_stores()
        # one key repeated across the whole batch: first access may miss,
        # every later one must hit — a pure ordering observable
        keys = [42] * (2 * BATCH_KERNEL_MIN)
        results_k = _drive_get_many(kernel, [keys])
        assert results_k == _drive_get_many(loop, [keys])
        hits = [hit for hit, _ in results_k[0]]
        assert hits[0] is False and all(hits[1:])
        assert kernel.metrics.kernel_batches == 1

    def test_mixed_puts_and_gets_interleave_consistently(self):
        kernel, loop = _paired_stores()
        for b, keys in enumerate(_batches(3, count=4)):
            if b % 2 == 0:
                _drive_put_many(kernel, [keys])
                _drive_put_many(loop, [keys])
            else:
                assert _drive_get_many(kernel, [keys]) == _drive_get_many(loop, [keys])
        assert kernel.metrics.kernel_batches == 4
        assert kernel._values == loop._values
        assert _comparable_snapshot(kernel) == _comparable_snapshot(loop)
        assert asyncio.run(kernel.verify()) == []

    def test_snapshot_and_prometheus_expose_kernel_batches(self):
        kernel, _ = _paired_stores()
        _drive_get_many(kernel, _batches(4, count=2))
        assert asyncio.run(kernel.stats())["kernel_batches"] == 2
        text = asyncio.run(kernel.metrics_text())
        assert "repro_kernel_batches_total 2" in text


class TestFallbacks:
    """Every veto keeps the per-key loop — silently, with identical results."""

    def test_small_batches_stay_on_the_loop(self):
        kernel, _ = _paired_stores()
        _drive_get_many(kernel, [[k for k in range(BATCH_KERNEL_MIN - 1)]])
        assert kernel.metrics.kernel_batches == 0
        _drive_get_many(kernel, [[k for k in range(BATCH_KERNEL_MIN)]])
        assert kernel.metrics.kernel_batches == 1

    def test_batch_kernel_false_disables_dispatch(self):
        store = PolicyStore(make("heatsink", 256, seed=9), batch_kernel=False)
        _drive_get_many(store, _batches(5))
        assert store.metrics.kernel_batches == 0

    def test_kernel_less_policy_falls_back(self):
        store = PolicyStore(make("lru", 256, seed=0), batch_kernel=True)
        batches = _batches(6)
        results = _drive_get_many(store, batches)
        assert store.metrics.kernel_batches == 0
        offline = make("lru", 256, seed=0)
        flat_keys = [k for keys in batches for k in keys]
        flat_hits = [hit for group in results for hit, _ in group]
        assert flat_hits == offline.run(np.asarray(flat_keys)).hits.tolist()

    def test_obs_hooks_force_the_loop_and_capture_every_access(self):
        store = PolicyStore(make("heatsink", 256, seed=9), batch_kernel=True)
        keys = _batches(7, count=1)[0]
        sink = ListSink()
        with hooks.capturing(sink):
            _drive_get_many(store, [keys])
        assert store.metrics.kernel_batches == 0
        accesses = [ev for ev in sink.events if ev.get("ev") == "access"]
        assert len(accesses) == len(keys)


class TestLoadgenParity:
    """The acceptance criterion end-to-end: a ``--batch`` replay against
    a kernel-backed store keeps *exact* hit-rate parity with the offline
    simulator while actually dispatching batch kernels."""

    @pytest.mark.parametrize("batch_kernel", [True, False])
    def test_batched_replay_matches_offline_hit_rate(self, batch_kernel):
        trace = repro.zipf_trace(1024, 8_000, alpha=1.0, seed=21)
        offline = make("heatsink", 256, seed=9).run(trace)
        store = PolicyStore(make("heatsink", 256, seed=9), batch_kernel=batch_kernel)
        report = serve_and_replay(
            store,
            trace,
            mode="pipeline",
            frame="binary",
            batch=4 * BATCH_KERNEL_MIN,
        )
        assert report.ops == len(trace)
        assert report.errors == 0
        assert report.hits == offline.num_hits
        assert report.server_stats["hit_rate"] == offline.hit_rate
        assert report.server_stats["misses"] == offline.num_misses
        if batch_kernel:
            assert report.server_stats["kernel_batches"] > 0
        else:
            assert report.server_stats["kernel_batches"] == 0

    def test_small_batch_replay_reports_zero_kernel_batches(self):
        trace = repro.zipf_trace(512, 2_000, alpha=1.0, seed=6)
        offline = make("heatsink", 128, seed=2).run(trace)
        store = PolicyStore(make("heatsink", 128, seed=2), batch_kernel=True)
        report = serve_and_replay(store, trace, batch=16)
        assert report.server_stats["hit_rate"] == offline.hit_rate
        assert report.server_stats["kernel_batches"] == 0
