"""PolicyStore semantics: demand paging, payloads, metrics, parity."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.service.store import PolicyStore


def run(coro):
    return asyncio.run(coro)


class TestBasicOps:
    def test_get_miss_then_hit(self):
        store = PolicyStore(repro.LRUCache(4))

        async def scenario():
            hit, value = await store.get(1)
            assert (hit, value) == (False, None)
            hit, value = await store.get(1)
            assert (hit, value) == (True, None)  # resident but no payload stored

        run(scenario())
        assert store.metrics.hits == 1
        assert store.metrics.misses == 1
        assert store.metrics.gets == 2

    def test_put_stores_payload_and_get_returns_it(self):
        store = PolicyStore(repro.LRUCache(4))

        async def scenario():
            assert await store.put(9, {"blob": "x"}) is False  # cold
            hit, value = await store.get(9)
            assert hit is True and value == {"blob": "x"}

        run(scenario())
        assert store.metrics.puts == 1

    def test_delete_drops_payload_not_residency(self):
        store = PolicyStore(repro.LRUCache(4))

        async def scenario():
            await store.put(2, "v")
            assert await store.delete(2) is True
            assert await store.delete(2) is False  # already gone
            hit, value = await store.get(2)
            assert hit is True  # still resident: demand paging never un-admits
            assert value is None

        run(scenario())

    def test_evicted_key_loses_stale_payload(self):
        store = PolicyStore(repro.LRUCache(2))

        async def scenario():
            await store.put(1, "one")
            await store.get(2)
            await store.get(3)  # evicts key 1 under LRU
            hit, value = await store.get(1)
            assert hit is False and value is None
            hit, value = await store.get(1)
            assert (hit, value) == (True, None)  # re-admitted without payload

        run(scenario())

    def test_offline_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyStore(repro.BeladyCache(4))


class TestStats:
    def test_eviction_accounting(self):
        store = PolicyStore(repro.LRUCache(2))

        async def scenario():
            for key in (1, 2, 3, 4):  # 4 misses into a 2-slot cache
                await store.get(key)
            return await store.stats()

        stats = run(scenario())
        assert stats["misses"] == 4
        assert stats["resident"] == 2
        assert stats["evictions"] == 2
        assert stats["capacity"] == 2
        assert stats["policy"] == repro.LRUCache(2).name

    def test_sink_occupancy_gauge_for_heatsink(self):
        store = PolicyStore(make_policy("heatsink", 64, seed=1))

        async def scenario():
            for key in range(200):
                await store.get(key)
            return await store.stats()

        stats = run(scenario())
        assert 0.0 <= stats["sink_occupancy"] <= 1.0

    def test_no_sink_gauge_for_plain_policies(self):
        store = PolicyStore(repro.LRUCache(2))
        stats = run(store.stats())
        assert "sink_occupancy" not in stats

    def test_latency_histogram_in_snapshot(self):
        store = PolicyStore(repro.LRUCache(2))
        store.metrics.latency.record(0.001)
        stats = run(store.stats())
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p50_us"] >= 1000


class TestPayloadBounding:
    def test_values_dict_stays_bounded(self):
        store = PolicyStore(repro.LRUCache(8))

        async def scenario():
            for key in range(1000):
                await store.put(key, "v")

        run(scenario())
        assert len(store._values) <= max(64, 2 * 8)


class TestOfflineParity:
    """The store's hit/miss stream must equal the offline simulator's."""

    @pytest.mark.parametrize("name", ["lru", "heatsink", "2-random", "sieve"])
    def test_get_stream_matches_run(self, name):
        trace = repro.zipf_trace(512, 5_000, alpha=1.0, seed=11)
        offline = _make(name, 128, seed=5).run(trace)
        store = PolicyStore(_make(name, 128, seed=5))

        async def scenario():
            hits = []
            for page in trace.pages.tolist():
                hit, _ = await store.get(page)
                hits.append(hit)
            return hits

        served_hits = run(scenario())
        assert served_hits == offline.hits.tolist()
        assert store.metrics.hit_rate == offline.hit_rate


def _make(name, capacity, *, seed):
    try:
        return make_policy(name, capacity, seed=seed)
    except TypeError:
        return make_policy(name, capacity)


class TestPeekAndKeys:
    """The non-mutating admin surface the cluster migration sweep uses."""

    def test_peek_never_advances_the_policy(self):
        store = PolicyStore(repro.LRUCache(4))

        async def scenario():
            await store.put(1, "v1")
            before = (store.metrics.hits, store.metrics.misses)
            assert await store.peek(1) == (True, "v1", True)
            assert await store.peek(99) == (False, None, False)
            assert (store.metrics.hits, store.metrics.misses) == before

        run(scenario())

    def test_peek_distinguishes_resident_from_stored(self):
        """After DEL the key stays resident but its payload is gone —
        ``stored`` is the only signal that tells the two apart (the
        migration sweep must skip resident-but-unstored keys)."""
        store = PolicyStore(repro.LRUCache(4))

        async def scenario():
            await store.put(5, "payload")
            assert await store.peek(5) == (True, "payload", True)
            await store.delete(5)
            assert await store.peek(5) == (True, None, False)
            # a stored None is still stored — not the same as deleted
            await store.put(6, None)
            assert await store.peek(6) == (True, None, True)

        run(scenario())

    def test_keys_lists_sorted_residents(self):
        store = PolicyStore(repro.LRUCache(3))

        async def scenario():
            for key in (9, 2, 7):
                await store.put(key, str(key))
            assert await store.keys() == [2, 7, 9]
            await store.put(1, "evictor")  # capacity 3: LRU drops 9
            assert await store.keys() == [1, 2, 7]
            await store.delete(2)  # DEL keeps residency
            assert await store.keys() == [1, 2, 7]

        run(scenario())
