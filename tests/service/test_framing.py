"""FrameSplitter and the binary wire framing, unit and end-to-end.

Covers the splitter as a pure parser (mixed-framing streams, arbitrary
chunking, oversize enforcement), the server answering each framing in
kind on a single raw connection, HELLO negotiation including refusal,
and the truncation regression: a binary frame cut short by a closing
server must surface as :class:`~repro.errors.ProtocolError` at the
client, never as a hang.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import make_policy
from repro.errors import ProtocolError, ServiceError
from repro.service.client import ServiceClient
from repro.service.framing import FrameSplitter
from repro.service.protocol import (
    BINARY_HEADER_SIZE,
    BINARY_TAG,
    FRAME_BINARY,
    FRAME_NDJSON,
    MAX_FRAME_BYTES,
    Request,
    encode_frame,
    encode_request,
)
from repro.service.server import running_server
from repro.service.store import PolicyStore


def make_store(policy: str = "heatsink", capacity: int = 32) -> PolicyStore:
    try:
        return PolicyStore(make_policy(policy, capacity, seed=0))
    except TypeError:
        return PolicyStore(make_policy(policy, capacity))


payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.none(), st.booleans(), st.integers(), st.text(max_size=16)),
    max_size=4,
)


def ndjson_frame(payload: dict) -> bytes:
    return json.dumps(payload).encode() + b"\n"


class TestFrameSplitter:
    @settings(max_examples=60, deadline=None)
    @given(
        frames=st.lists(st.tuples(payloads, st.booleans()), min_size=1, max_size=12),
        data=st.data(),
    )
    def test_mixed_stream_recovered_under_arbitrary_chunking(self, frames, data):
        wire = bytearray()
        expected = []
        for payload, binary in frames:
            raw = encode_frame(payload) if binary else ndjson_frame(payload)
            wire += raw
            expected.append((raw, binary))
        splitter = FrameSplitter()
        out = []
        pos = 0
        while pos < len(wire):
            step = data.draw(st.integers(min_value=1, max_value=len(wire) - pos))
            out.extend(splitter.feed(bytes(wire[pos : pos + step])))
            pos += step
        assert splitter.pending == 0
        assert [(f.raw, f.binary) for f in out] == expected
        for frame, (payload, binary) in zip(out, frames):
            assert json.loads(frame.payload) == payload

    def test_partial_frames_stay_pending(self):
        splitter = FrameSplitter()
        binary = encode_frame({"ok": True, "value": "x" * 50})
        assert splitter.feed(binary[:3]) == []
        assert splitter.pending == 3
        assert splitter.feed(binary[3:-1]) == []
        (frame,) = splitter.feed(binary[-1:])
        assert frame.raw == binary and frame.binary
        assert splitter.pending == 0
        assert splitter.feed(b'{"op": "PING"') == []
        assert splitter.pending > 0
        (frame,) = splitter.feed(b"}\n")
        assert not frame.binary

    def test_oversized_line_rejected_even_before_newline(self):
        splitter = FrameSplitter(max_frame=64)
        with pytest.raises(ProtocolError, match="no newline"):
            splitter.feed(b"x" * 65)

    def test_oversized_binary_header_rejected_immediately(self):
        splitter = FrameSplitter(max_frame=64)
        header = bytes([BINARY_TAG]) + (1000).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds"):
            splitter.feed(header)

    def test_default_cap_is_max_frame_bytes(self):
        splitter = FrameSplitter()
        header = bytes([BINARY_TAG]) + (MAX_FRAME_BYTES).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            splitter.feed(header)

    def test_boundary_exact_frames_pass(self):
        splitter = FrameSplitter(max_frame=64)
        line = b"x" * 63 + b"\n"
        (frame,) = splitter.feed(line)
        assert frame.raw == line
        body = b"y" * (64 - BINARY_HEADER_SIZE)
        raw = bytes([BINARY_TAG]) + len(body).to_bytes(4, "big") + body
        (frame,) = splitter.feed(raw)
        assert frame.payload == body

    def test_rejects_tiny_max_frame(self):
        with pytest.raises(ValueError):
            FrameSplitter(max_frame=BINARY_HEADER_SIZE)


class TestBinaryEndToEnd:
    def test_binary_session_matches_ndjson_session(self):
        async def session(frame: str) -> list:
            out = []
            async with running_server(make_store()) as server:
                client = await ServiceClient.connect(
                    "127.0.0.1", server.port, frame=frame
                )
                assert client.frame == frame
                try:
                    for key in range(40):
                        out.append(await client.put(key, f"v{key}"))
                    for key in range(40):
                        out.append(await client.get(key))
                    out.append(await client.mget(list(range(10))))
                    out.append(
                        await client.mput(list(range(5)), [f"w{k}" for k in range(5)])
                    )
                    stats = await client.stats()
                    out.append({k: stats[k] for k in ("gets", "puts", "hits", "misses")})
                    out.append(await client.ping())
                finally:
                    await client.close()
            return out

        ndjson = asyncio.run(session(FRAME_NDJSON))
        binary = asyncio.run(session(FRAME_BINARY))
        assert ndjson == binary

    def test_mixed_framings_on_one_connection_answered_in_kind(self):
        async def scenario():
            async with running_server(make_store()) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                try:
                    # ndjson then binary then ndjson, pipelined on one socket
                    writer.write(encode_request(Request(op="PUT", key=1, value="a")))
                    writer.write(
                        encode_request(Request(op="GET", key=1), frame=FRAME_BINARY)
                    )
                    writer.write(encode_request(Request(op="PING")))
                    await writer.drain()
                    first = json.loads(await reader.readline())
                    assert first == {"ok": True, "hit": False}
                    header = await reader.readexactly(BINARY_HEADER_SIZE)
                    assert header[0] == BINARY_TAG
                    body = await reader.readexactly(int.from_bytes(header[1:], "big"))
                    assert json.loads(body) == {"ok": True, "hit": True, "value": "a"}
                    third = json.loads(await reader.readline())
                    assert third == {"ok": True, "pong": True}
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())

    def test_truncated_binary_frame_raises_protocol_error_not_hang(self):
        async def scenario():
            async def fake_server(reader, writer):
                await reader.read(256)  # the client's first (binary) request
                # write a header promising 100 bytes, deliver 10, vanish
                writer.write(
                    bytes([BINARY_TAG]) + (100).to_bytes(4, "big") + b"x" * 10
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = await ServiceClient.connect("127.0.0.1", port)
                client.frame = FRAME_BINARY  # skip HELLO; fake server can't answer it
                try:
                    with pytest.raises(ProtocolError, match="truncated binary frame"):
                        await asyncio.wait_for(client.get(1), timeout=2.0)
                finally:
                    await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_clean_close_is_service_error_not_protocol_error(self):
        async def scenario():
            async def fake_server(reader, writer):
                await reader.read(256)
                writer.close()  # close without writing any response bytes

            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = await ServiceClient.connect("127.0.0.1", port)
                client.frame = FRAME_BINARY
                try:
                    with pytest.raises(ServiceError):
                        await asyncio.wait_for(client.get(1), timeout=2.0)
                finally:
                    await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())


class TestNegotiation:
    def test_hello_reports_server_framings(self):
        async def scenario():
            async with running_server(make_store()) as server:
                async with await ServiceClient.connect("127.0.0.1", server.port) as client:
                    response = await client.hello(frame=FRAME_BINARY)
                    assert response["ok"] and response["frame"] == FRAME_BINARY
                    assert set(response["frames"]) == {FRAME_NDJSON, FRAME_BINARY}

        asyncio.run(scenario())

    def test_connect_binary_refused_by_ndjson_only_server(self):
        async def scenario():
            async with running_server(make_store(), frames=(FRAME_NDJSON,)) as server:
                with pytest.raises(ServiceError, match="binary"):
                    await ServiceClient.connect(
                        "127.0.0.1", server.port, frame=FRAME_BINARY
                    )
                # ndjson connects fine and the port was not wedged
                async with await ServiceClient.connect("127.0.0.1", server.port) as client:
                    assert await client.ping()

        asyncio.run(scenario())

    def test_binary_only_server_rejects_ndjson_data_ops_but_answers_hello(self):
        async def scenario():
            async with running_server(make_store(), frames=(FRAME_BINARY,)) as server:
                client = await ServiceClient.connect(
                    "127.0.0.1", server.port, frame=FRAME_BINARY
                )
                try:
                    assert (await client.get(1))["ok"]
                finally:
                    await client.close()
                # raw ndjson connection: HELLO works, data ops are refused
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                try:
                    writer.write(encode_request(Request(op="HELLO", frame=FRAME_BINARY)))
                    writer.write(encode_request(Request(op="GET", key=1)))
                    await writer.drain()
                    hello = json.loads(await reader.readline())
                    assert hello["ok"] and hello["frames"] == [FRAME_BINARY]
                    refused = json.loads(await reader.readline())
                    assert not refused["ok"]
                    assert "not accepted" in refused["error"]
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())
