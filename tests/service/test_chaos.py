"""Chaos integration: loadgen through the fault proxy, end to end.

Acceptance criteria from the robustness issue:

- 20 consecutive seeds complete with **zero unhandled exceptions** on
  either side (the replay never crashes; the server's error isolation
  absorbs corrupted frames);
- server metrics stay internally consistent after every faulted run
  (``PolicyStore.verify`` returns no violations — accesses equal
  hits + misses, evictions are non-negative, payload memory is bounded);
- a seeded plan replayed twice produces **identical** retry / timeout /
  rejection / fault counters (determinism).
"""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.core.registry import make_policy
from repro.service.client import RetryPolicy
from repro.service.faults import FaultPlan
from repro.service.loadgen import replay_trace
from repro.service.server import running_server
from repro.service.store import PolicyStore

TRACE_LEN = 120


def chaos_replay(
    seed, *, plan, policy="heatsink", capacity=64, frame="ndjson", batch=1, **server_kwargs
):
    """One server + proxy + resilient replay; returns (report, verify problems)."""
    trace = repro.zipf_trace(128, TRACE_LEN, alpha=1.0, seed=seed)
    retry = RetryPolicy(max_attempts=8, base_delay=0.005, max_delay=0.03, seed=seed)

    async def scenario():
        try:
            instance = make_policy(policy, capacity, seed=seed)
        except TypeError:
            instance = make_policy(policy, capacity)
        async with running_server(PolicyStore(instance), **server_kwargs) as server:
            report = await replay_trace(
                trace,
                host="127.0.0.1",
                port=server.port,
                mode="pipeline",
                concurrency=12,
                timeout=0.15,
                retry=retry,
                faults=plan,
                frame=frame,
                batch=batch,
            )
            problems = await server.store.verify()
            snapshot = await server.store.stats()
        return report, problems, snapshot

    return asyncio.run(scenario())


def mixed_plan(seed, direction="both"):
    return FaultPlan(
        seed=seed,
        delay_rate=0.02,
        delay_s=0.001,
        drop_rate=0.004,
        reset_rate=0.004,
        truncate_rate=0.003,
        corrupt_rate=0.01,
        direction=direction,
    )


class TestChaosIntegration:
    def test_twenty_seeds_no_crashes_and_consistent_metrics(self):
        saw_faults = 0
        for seed in range(20):
            report, problems, snapshot = chaos_replay(seed, plan=mixed_plan(seed))
            # zero unhandled exceptions: chaos_replay returning IS the assertion;
            # every key was accounted for, crashed windows included
            assert report.ops == TRACE_LEN, f"seed {seed} lost ops"
            assert problems == [], f"seed {seed}: {problems}"
            assert snapshot["accesses"] == snapshot["hits"] + snapshot["misses"]
            assert snapshot["gets"] + snapshot["puts"] == snapshot["accesses"]
            # retried windows may replay accesses, never un-play them
            assert snapshot["accesses"] >= report.ops - report.errors
            saw_faults += report.fault_stats["faults"]
        assert saw_faults > 0, "chaos run injected no faults at all"

    def test_seeded_plan_replays_identically(self):
        """The determinism acceptance criterion.

        Client→server faults only: the response path can race connection
        aborts, so its *forwarded-frame* count is not reproducible, but
        every injection decision and client counter must be.
        """
        results = [
            chaos_replay(11, plan=mixed_plan(11, direction="c2s")) for _ in range(2)
        ]
        (r1, p1, s1), (r2, p2, s2) = results
        assert p1 == p2 == []
        assert r1.client_stats == r2.client_stats
        assert r1.client_stats["retries"] > 0  # the plan actually bit
        decisions = [
            {
                k: r.fault_stats[k]
                for k in ("delays", "drops", "resets", "truncations", "corruptions")
            }
            for r in (r1, r2)
        ]
        assert decisions[0] == decisions[1]
        assert (r1.ops, r1.hits, r1.errors) == (r2.ops, r2.hits, r2.errors)
        # server-side accounting is reproducible too: same requests reached
        # the policy in the same order
        for field in ("accesses", "hits", "misses", "errors", "rejected"):
            assert s1[field] == s2[field], field

    def test_retry_counters_match_injected_faults(self):
        """A c2s drop strands the client in a read that times out (unless
        a reset/truncate kills the same window first — seed 2 has no such
        collision); resets/truncations surface as connection errors.
        Retries must cover every window-killing fault."""
        plan = mixed_plan(2, direction="c2s")
        report, problems, _ = chaos_replay(2, plan=plan)
        assert problems == []
        killing = (
            report.fault_stats["drops"]
            + report.fault_stats["resets"]
            + report.fault_stats["truncations"]
        )
        assert report.fault_stats["drops"] > 0 and report.fault_stats["resets"] > 0
        assert report.timeouts == report.fault_stats["drops"]
        assert report.retries >= killing > 0

    def test_clean_plan_means_clean_counters_and_exact_parity(self):
        trace = repro.zipf_trace(128, TRACE_LEN, alpha=1.0, seed=13)
        offline = make_policy("lru", 64).run(trace)
        report, problems, snapshot = chaos_replay(
            13, plan=FaultPlan(seed=13), policy="lru"
        )
        assert problems == []
        assert report.retries == 0
        assert report.timeouts == 0
        assert report.errors == 0
        assert report.fault_stats["faults"] == 0
        # with zero faults the proxy is a pure relay: bitwise parity holds
        assert snapshot["hits"] == offline.num_hits
        assert snapshot["misses"] == offline.num_misses

    def test_chaos_with_connection_cap(self):
        """Faults + overload shedding together: still no crashes, still
        consistent. Connection teardown (and the proxy's lingering
        upstream sockets) can race the cap, so rejections are only
        bounded below by what clients observed, not equal to it."""
        report, problems, snapshot = chaos_replay(
            5, plan=mixed_plan(5), max_connections=1
        )
        assert problems == []
        assert report.ops == TRACE_LEN
        assert snapshot is not None and snapshot["accesses"] > 0  # stats fetch survived
        assert snapshot["rejected"] >= report.client_stats["overloaded"]


class TestChaosBothFramings:
    """The acceptance criterion: the fault proxy stays frame-aware for both
    wire framings, so chaos runs survive (and stay consistent) whether the
    client speaks NDJSON or binary, batched or not."""

    @pytest.mark.parametrize("frame", ["ndjson", "binary"])
    @pytest.mark.parametrize("seed", [3, 7])
    def test_chaos_survives_either_framing(self, frame, seed):
        report, problems, snapshot = chaos_replay(
            seed, plan=mixed_plan(seed), frame=frame
        )
        assert report.ops == TRACE_LEN, f"{frame} seed {seed} lost ops"
        assert report.frame == frame
        assert problems == [], f"{frame} seed {seed}: {problems}"
        assert snapshot["accesses"] == snapshot["hits"] + snapshot["misses"]

    @pytest.mark.parametrize("frame", ["ndjson", "binary"])
    def test_chaos_survives_batched_ops(self, frame):
        report, problems, snapshot = chaos_replay(
            9, plan=mixed_plan(9), frame=frame, batch=8
        )
        assert report.ops == TRACE_LEN
        assert report.batch == 8
        assert problems == []
        assert snapshot["accesses"] == snapshot["hits"] + snapshot["misses"]

    @pytest.mark.parametrize("frame", ["ndjson", "binary"])
    def test_clean_plan_parity_holds_in_both_framings(self, frame):
        trace = repro.zipf_trace(128, TRACE_LEN, alpha=1.0, seed=17)
        offline = make_policy("lru", 64).run(trace)
        report, problems, snapshot = chaos_replay(
            17, plan=FaultPlan(seed=17), policy="lru", frame=frame, batch=4
        )
        assert problems == []
        assert report.errors == 0 and report.fault_stats["faults"] == 0
        assert snapshot["hits"] == offline.num_hits
        assert snapshot["misses"] == offline.num_misses


class TestChaosWorkersMode:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_concurrent_workers_survive_faults(self, seed):
        trace = repro.zipf_trace(128, 400, alpha=1.0, seed=seed)
        plan = mixed_plan(seed)
        retry = RetryPolicy(max_attempts=8, base_delay=0.005, max_delay=0.03, seed=seed)

        async def scenario():
            store = PolicyStore(repro.LRUCache(64))
            async with running_server(store) as server:
                report = await replay_trace(
                    trace,
                    host="127.0.0.1",
                    port=server.port,
                    mode="workers",
                    concurrency=6,
                    timeout=0.15,
                    retry=retry,
                    faults=plan,
                )
                problems = await server.store.verify()
            return report, problems

        report, problems = asyncio.run(scenario())
        assert problems == []
        assert report.ops == len(trace)
