"""Wire-protocol framing and validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    Request,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_payload,
)


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "req",
        [
            Request("GET", key=0),
            Request("GET", key=2**40),
            Request("PUT", key=7, value="payload"),
            Request("PUT", key=7, value={"nested": [1, 2, None]}),
            Request("PUT", key=7, value=None),
            Request("DEL", key=3),
            Request("STATS"),
            Request("PING"),
        ],
    )
    def test_round_trip(self, req):
        line = encode_request(req)
        assert line.endswith(b"\n")
        assert decode_request(line) == req

    def test_one_line_per_request(self):
        line = encode_request(Request("PUT", key=1, value="a\nb"))
        assert line.count(b"\n") == 1  # embedded newline must be escaped

    def test_lowercase_op_accepted(self):
        assert decode_request(b'{"op": "get", "key": 4}\n') == Request("GET", key=4)


class TestRequestValidation:
    @pytest.mark.parametrize(
        "line",
        [
            b"",
            b"\n",
            b"not json\n",
            b"[1, 2]\n",
            b'{"op": "EXPLODE"}\n',
            b'{"key": 1}\n',
            b'{"op": "GET"}\n',  # missing key
            b'{"op": "GET", "key": -1}\n',
            b'{"op": "GET", "key": 1.5}\n',
            b'{"op": "GET", "key": true}\n',
            b'{"op": "GET", "key": "7"}\n',
            b'{"op": "PUT", "key": 1}\n',  # missing value
            b'{"op": "PING", "key": 1}\n',  # stray key
            b'{"op": "GET", "key": 1, "value": "x"}\n',  # stray value
            b"\xff\xfe\n",  # not UTF-8
        ],
    )
    def test_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"x" * (MAX_LINE_BYTES + 1))

    def test_oversized_value_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_request(Request("PUT", key=1, value="x" * MAX_LINE_BYTES))


class TestResponses:
    def test_round_trip(self):
        payload = {"ok": True, "hit": False, "value": None}
        assert decode_response(encode_response(payload)) == payload

    def test_numpy_scalars_serialize(self):
        np = pytest.importorskip("numpy")
        line = encode_response({"ok": True, "count": np.int64(3), "rate": np.float64(0.5)})
        assert json.loads(line) == {"ok": True, "count": 3, "rate": 0.5}

    def test_error_payload_shape(self):
        payload = error_payload("boom", code="rejected")
        assert payload["ok"] is False
        assert payload["code"] == "rejected"
        assert "boom" in payload["error"]


class TestClusterAdminOps:
    """PEEK/KEYS/RESHARD — the vocabulary the cluster router rides on."""

    @pytest.mark.parametrize(
        "req",
        [
            Request("PEEK", key=5),
            Request("KEYS"),
            Request("RESHARD"),  # bare = status query
            Request("RESHARD", node="w2", host="10.0.0.5", port=7070),
            Request("RESHARD", node="w1", remove=True),
        ],
    )
    def test_round_trip(self, req):
        assert decode_request(encode_request(req)) == req

    @pytest.mark.parametrize(
        "line",
        [
            b'{"op": "PEEK"}\n',  # missing key
            b'{"op": "PEEK", "key": true}\n',
            b'{"op": "KEYS", "key": 3}\n',  # KEYS takes nothing
            b'{"op": "GET", "key": 1, "node": "w2"}\n',  # reshard field on a data op
            b'{"op": "RESHARD", "host": "h"}\n',  # status query takes no field
            b'{"op": "RESHARD", "node": ""}\n',
            b'{"op": "RESHARD", "node": "w2"}\n',  # add without host/port
            b'{"op": "RESHARD", "node": "w2", "host": "h", "port": 0}\n',
            b'{"op": "RESHARD", "node": "w2", "host": "h", "port": true}\n',
            b'{"op": "RESHARD", "node": "w2", "remove": true, "host": "h"}\n',
            b'{"op": "RESHARD", "node": "w2", "remove": "yes"}\n',
        ],
    )
    def test_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_remove_flag_defaults_false(self):
        req = decode_request(b'{"op": "RESHARD", "node": "w3", "host": "h", "port": 9}\n')
        assert req.remove is False
        assert (req.node, req.host, req.port) == ("w3", "h", 9)
