"""Latency histogram and metrics counters."""

from __future__ import annotations

import pytest

from repro.service.metrics import LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0
        assert hist.snapshot()["count"] == 0

    def test_percentile_monotone_and_bounding(self):
        hist = LatencyHistogram()
        for us in (1, 2, 4, 50, 50, 50, 400, 2000, 100000, 100000):
            hist.record(us * 1e-6)
        p50, p90, p99 = (hist.percentile(q) for q in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99
        # bucket upper bounds: at most 2x above the true value
        assert 50e-6 <= p50 <= 100e-6
        assert p99 <= 2 * 0.1
        assert hist.max == pytest.approx(0.1)

    def test_overflow_bucket(self):
        hist = LatencyHistogram(base=1e-6, num_buckets=4)  # top bound: 8µs
        hist.record(1.0)
        assert hist.percentile(1.0) == pytest.approx(1.0)  # reports observed max

    def test_negative_clamped(self):
        hist = LatencyHistogram()
        hist.record(-5.0)
        assert hist.count == 1
        assert hist.max == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(base=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(num_buckets=0)

    def test_mean_tracks_total(self):
        hist = LatencyHistogram()
        hist.record(0.002)
        hist.record(0.004)
        assert hist.mean == pytest.approx(0.003)


class TestServiceMetrics:
    def test_hit_rate(self):
        metrics = ServiceMetrics()
        assert metrics.hit_rate == 0.0
        metrics.hits, metrics.misses = 3, 1
        assert metrics.accesses == 4
        assert metrics.hit_rate == 0.75

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = ServiceMetrics()
        metrics.latency.record(1e-4)
        snap = metrics.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["connections_open"] == 0
        assert snap["latency"]["count"] == 1
