"""Latency histogram and metrics counters."""

from __future__ import annotations

import pytest

from repro.service.metrics import LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0
        assert hist.snapshot()["count"] == 0

    def test_percentile_monotone_and_bounding(self):
        hist = LatencyHistogram()
        for us in (1, 2, 4, 50, 50, 50, 400, 2000, 100000, 100000):
            hist.record(us * 1e-6)
        p50, p90, p99 = (hist.percentile(q) for q in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99
        # bucket upper bounds: at most 2x above the true value
        assert 50e-6 <= p50 <= 100e-6
        assert p99 <= 2 * 0.1
        assert hist.max == pytest.approx(0.1)

    def test_overflow_bucket(self):
        hist = LatencyHistogram(base=1e-6, num_buckets=4)  # top bound: 8µs
        hist.record(1.0)
        assert hist.percentile(1.0) == pytest.approx(1.0)  # reports observed max

    def test_negative_clamped(self):
        hist = LatencyHistogram()
        hist.record(-5.0)
        assert hist.count == 1
        assert hist.max == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(base=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(num_buckets=0)

    def test_mean_tracks_total(self):
        hist = LatencyHistogram()
        hist.record(0.002)
        hist.record(0.004)
        assert hist.mean == pytest.approx(0.003)


class TestServiceMetrics:
    def test_hit_rate(self):
        metrics = ServiceMetrics()
        assert metrics.hit_rate == 0.0
        metrics.hits, metrics.misses = 3, 1
        assert metrics.accesses == 4
        assert metrics.hit_rate == 0.75

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = ServiceMetrics()
        metrics.latency.record(1e-4)
        snap = metrics.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["connections_open"] == 0
        assert snap["latency"]["count"] == 1


class TestHistogramSnapshot:
    def test_snapshot_carries_sum_and_buckets(self):
        hist = LatencyHistogram(base=1e-6, num_buckets=3)  # bounds 1,2,4 µs
        hist.record(1.5e-6)
        hist.record(1.0)  # overflow
        snap = hist.snapshot()
        assert snap["sum_us"] == pytest.approx(1.5 + 1e6)
        bounds = [b for b, _ in snap["buckets"]]
        assert bounds == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(4.0), None]
        counts = [c for _, c in snap["buckets"]]
        assert counts == [0, 1, 1, 2]  # cumulative; overflow folded into None

    def test_quantile_edges(self):
        hist = LatencyHistogram()
        for us in (1, 10, 100):
            hist.record(us * 1e-6)
        assert hist.percentile(0.0) <= hist.percentile(1.0)
        assert hist.percentile(1.0) == pytest.approx(128e-6)

    def test_empty_snapshot_buckets_all_zero(self):
        snap = LatencyHistogram(num_buckets=4).snapshot()
        assert snap["sum_us"] == 0.0
        assert all(count == 0 for _, count in snap["buckets"])


class TestPerOpLatency:
    def test_record_op_feeds_combined_and_per_op(self):
        metrics = ServiceMetrics()
        metrics.record_op("GET", 1e-4)
        metrics.record_op("PUT", 2e-4)
        metrics.record_op("GET", 3e-4)
        assert metrics.latency.count == 3
        assert metrics.latency_by_op["GET"].count == 2
        assert metrics.latency_by_op["PUT"].count == 1
        assert metrics.latency_by_op["DEL"].count == 0

    def test_unknown_and_none_ops_hit_only_combined(self):
        metrics = ServiceMetrics()
        metrics.record_op(None, 1e-4)  # unparseable request
        metrics.record_op("STATS", 1e-4)  # no per-op histogram
        assert metrics.latency.count == 2
        assert all(h.count == 0 for h in metrics.latency_by_op.values())

    def test_snapshot_includes_per_op_section(self):
        import json

        metrics = ServiceMetrics()
        metrics.record_op("GET", 5e-5)
        snap = metrics.snapshot()
        json.dumps(snap)  # must stay JSON-able
        assert set(snap["latency_by_op"]) == {"get", "put", "del", "mget", "mput"}
        assert snap["latency_by_op"]["get"]["count"] == 1
        assert snap["latency"]["count"] == 1


class TestBuildRegistry:
    def test_scrape_matches_counters(self):
        from repro.obs.exposition import parse_prometheus
        from repro.service.metrics import build_registry

        metrics = ServiceMetrics()
        metrics.gets, metrics.puts, metrics.dels = 7, 2, 1
        metrics.hits, metrics.misses = 6, 4
        metrics.connections_opened, metrics.connections_closed = 3, 2
        metrics.record_op("GET", 1e-4)
        parsed = parse_prometheus(
            build_registry(
                metrics,
                gauges={"repro_resident_pages": 5.0},
                counters={"repro_evictions_total": 2.0},
            ).render()
        )
        assert parsed.value("repro_ops_total", op="get") == 7.0
        assert parsed.value("repro_ops_total", op="put") == 2.0
        assert parsed.value("repro_hits_total") == 6.0
        assert parsed.value("repro_misses_total") == 4.0
        assert parsed.value("repro_hit_ratio") == 0.6
        assert parsed.value("repro_connections_open") == 1.0
        assert parsed.value("repro_resident_pages") == 5.0
        assert parsed.value("repro_evictions_total") == 2.0
        assert parsed.value("repro_request_latency_seconds_count") == 1.0
        assert parsed.value("repro_op_latency_seconds_count", op="get") == 1.0
        assert parsed.value("repro_op_latency_seconds_count", op="put") == 0.0
        assert parsed.types["repro_op_latency_seconds"] == "histogram"

    def test_registered_histograms_are_live_not_copied(self):
        from repro.service.metrics import build_registry

        metrics = ServiceMetrics()
        reg = build_registry(metrics)
        metrics.record_op("GET", 1e-4)  # after registry construction
        text = reg.render()
        assert 'repro_op_latency_seconds_count{op="get"} 1' in text


class TestRecentWindow:
    """The sliding window behind STATS' `recent` block (fake clock throughout)."""

    def test_bad_shape_rejected(self):
        from repro.service.metrics import RecentWindow

        with pytest.raises(ValueError):
            RecentWindow(window_s=0)
        with pytest.raises(ValueError):
            RecentWindow(slices=1)

    def test_snapshot_counts_and_rate(self):
        from repro.service.metrics import RecentWindow

        window = RecentWindow(window_s=30.0, slices=6)
        base = window._born + 100.0
        for i in range(60):
            window.record(1e-4, now=base + i * 0.1)  # 10/s for 6s
        snap = window.snapshot(now=base + 6.0)
        assert snap["count"] == 60
        assert snap["rate"] > 0
        assert snap["p50_us"] >= 100.0  # bucket upper bound of 100µs
        assert snap["max_us"] == pytest.approx(100.0)

    def test_old_observations_expire(self):
        from repro.service.metrics import RecentWindow

        window = RecentWindow(window_s=30.0, slices=6)
        base = window._born + 100.0
        window.record(5e-3, now=base)           # one slow request
        inside = window.snapshot(now=base + 10.0)
        assert inside["count"] == 1
        after = window.snapshot(now=base + 40.0)  # > window_s later
        assert after["count"] == 0
        assert after["max_us"] == 0.0

    def test_spike_decays_but_recent_traffic_stays(self):
        from repro.service.metrics import RecentWindow

        window = RecentWindow(window_s=30.0, slices=6)
        base = window._born + 100.0
        window.record(1.0, now=base)  # pathological 1s request
        for i in range(20):
            window.record(1e-4, now=base + 25.0 + i * 0.01)
        snap = window.snapshot(now=base + 40.0)  # spike slice rotated out
        assert snap["count"] == 20
        assert snap["max_us"] == pytest.approx(100.0)

    def test_window_s_clamped_to_age_when_young(self):
        from repro.service.metrics import RecentWindow

        window = RecentWindow(window_s=30.0, slices=6)
        snap = window.snapshot(now=window._born + 2.0)
        assert snap["window_s"] <= 2.0 + 1e-6

    def test_service_metrics_snapshot_carries_recent(self):
        metrics = ServiceMetrics()
        metrics.record_op("GET", 2e-4)
        snap = metrics.snapshot()
        assert snap["recent"]["count"] == 1
        assert snap["recent"]["p99_us"] > 0
