"""ShardedPolicyStore: routing, differential identity, merged accounting.

The two load-bearing claims:

1. ``shards=1`` is *behaviourally identical* to a plain single
   :class:`PolicyStore` — and hence, transitively, to the offline sim
   engine (hit for hit), the same anchor ``test_differential.py`` pins
   for the unsharded store.
2. ``shards=N`` is exactly ``N`` independent single stores: each shard's
   counters equal an offline run of that shard's key subsequence with
   the shard's own derived seed, and batched ops are indistinguishable
   from loops of single ops.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.hashing import hash_to_range, splitmix64
from repro.rng import derive_seed
from repro.service.sharding import ShardedPolicyStore, split_capacity
from repro.service.store import PolicyStore
from repro.sim.engine import run_policy

POLICIES = ("lru", "2-random", "heatsink")

capacities = st.integers(min_value=3, max_value=16)
ops = st.lists(
    st.tuples(st.sampled_from(["GET", "PUT", "DEL"]), st.integers(min_value=0, max_value=24)),
    max_size=80,
)


def make(name: str, capacity: int, seed: int):
    try:
        return make_policy(name, capacity, seed=seed)
    except TypeError:
        return make_policy(name, capacity)


def drive(store, op_list):
    """Apply an op mix; returns (stats snapshot, verify problems)."""

    async def scenario():
        for op, key in op_list:
            if op == "GET":
                await store.get(key)
            elif op == "PUT":
                await store.put(key, f"v{key}")
            else:
                await store.delete(key)
        return await store.stats(), await store.verify()

    return asyncio.run(scenario())


class TestSplitCapacity:
    def test_sums_and_fairness(self):
        for capacity in range(4, 40):
            for shards in range(1, capacity + 1):
                parts = split_capacity(capacity, shards)
                assert sum(parts) == capacity
                assert len(parts) == shards
                assert max(parts) - min(parts) <= 1
                assert min(parts) >= 1

    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            split_capacity(8, 0)
        with pytest.raises(ConfigurationError):
            split_capacity(3, 4)
        with pytest.raises(ConfigurationError):
            ShardedPolicyStore([])


class TestRouting:
    def test_shard_of_matches_documented_hash(self):
        store = ShardedPolicyStore.build("lru", 64, shards=4)
        for key in range(200):
            assert store.shard_of(key) == int(hash_to_range(int(splitmix64(key)), 4))

    def test_single_shard_routes_everything_to_zero(self):
        store = ShardedPolicyStore.build("lru", 8, shards=1)
        assert all(store.shard_of(k) == 0 for k in range(100))

    def test_routing_covers_all_shards(self):
        store = ShardedPolicyStore.build("lru", 64, shards=4)
        seen = {store.shard_of(k) for k in range(1000)}
        assert seen == {0, 1, 2, 3}


class TestSingleShardIdentity:
    """shards=1 ≡ plain PolicyStore ≡ offline engine (the tentpole claim)."""

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(op_list=ops, capacity=capacities, name=st.sampled_from(POLICIES), seed=st.integers(0, 7))
    def test_identical_to_unsharded_store(self, op_list, capacity, name, seed):
        sharded = ShardedPolicyStore.build(name, capacity, shards=1, seed=seed)
        plain = PolicyStore(make(name, capacity, seed))
        s_snap, s_problems = drive(sharded, op_list)
        p_snap, p_problems = drive(plain, op_list)
        assert s_problems == p_problems == []
        for field in ("gets", "puts", "dels", "hits", "misses", "resident", "evictions"):
            assert s_snap[field] == p_snap[field], field

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(op_list=ops, capacity=capacities, name=st.sampled_from(POLICIES), seed=st.integers(0, 7))
    def test_identical_to_offline_engine(self, op_list, capacity, name, seed):
        snapshot, problems = drive(
            ShardedPolicyStore.build(name, capacity, shards=1, seed=seed), op_list
        )
        assert problems == []
        accesses = [key for op, key in op_list if op != "DEL"]
        if not accesses:
            assert snapshot["hits"] == snapshot["misses"] == 0
            return
        reference = make(name, capacity, seed)
        row = run_policy(reference, np.asarray(accesses, dtype=np.int64))
        assert snapshot["hits"] == row["accesses"] - row["misses"]
        assert snapshot["misses"] == row["misses"]
        assert snapshot["resident"] == len(reference)


class TestShardIndependence:
    """Each shard behaves as its own single store over its key subsequence."""

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        op_list=ops,
        name=st.sampled_from(POLICIES),
        seed=st.integers(0, 7),
        shards=st.integers(2, 4),
    )
    def test_per_shard_counters_match_offline_subsequences(self, op_list, name, seed, shards):
        capacity = 4 * shards
        store = ShardedPolicyStore.build(name, capacity, shards=shards, seed=seed)
        snapshot, problems = drive(store, op_list)
        assert problems == []
        accesses = [key for op, key in op_list if op != "DEL"]
        groups: dict[int, list[int]] = {i: [] for i in range(shards)}
        for key in accesses:
            groups[store.shard_of(key)].append(key)
        for index, shard in enumerate(store.shards):
            keys = groups[index]
            entry = snapshot["per_shard"][index]
            if not keys:
                assert entry["hits"] == entry["misses"] == 0
                continue
            reference = make(name, shard.policy.capacity, derive_seed(seed, "shard", index))
            row = run_policy(reference, np.asarray(keys, dtype=np.int64))
            assert entry["hits"] == row["accesses"] - row["misses"], f"shard {index}"
            assert entry["misses"] == row["misses"], f"shard {index}"

    def test_routing_invariant_enforced_by_verify(self):
        async def scenario():
            store = ShardedPolicyStore.build("lru", 16, shards=4)
            for key in range(64):
                await store.put(key, key)
            assert await store.verify() == []
            # plant a mis-routed key directly in a shard's policy
            victim = next(k for k in range(1000) if store.shard_of(k) != 0)
            store.shards[0].policy.access(victim)
            problems = await store.verify()
            assert any("routes to shard" in p for p in problems)

        asyncio.run(scenario())


class TestBatchedOps:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        keys=st.lists(st.integers(0, 24), min_size=1, max_size=60),
        shards=st.integers(1, 4),
        seed=st.integers(0, 3),
    )
    def test_get_many_equals_single_gets(self, keys, shards, seed):
        async def scenario(batched: bool):
            store = ShardedPolicyStore.build("heatsink", 4 * shards, shards=shards, seed=seed)
            if batched:
                results = await store.get_many(keys)
            else:
                results = [await store.get(k) for k in keys]
            return results, await store.stats()

        r_batch, s_batch = asyncio.run(scenario(True))
        r_single, s_single = asyncio.run(scenario(False))
        assert r_batch == r_single
        for field in ("gets", "hits", "misses", "resident"):
            assert s_batch[field] == s_single[field], field

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        keys=st.lists(st.integers(0, 24), min_size=1, max_size=60),
        shards=st.integers(1, 4),
    )
    def test_put_many_equals_single_puts(self, keys, shards):
        values = [f"v{k}" for k in keys]

        async def scenario(batched: bool):
            store = ShardedPolicyStore.build("lru", 4 * shards, shards=shards)
            if batched:
                hits = await store.put_many(keys, values)
            else:
                hits = [await store.put(k, v) for k, v in zip(keys, values)]
            return hits, await store.stats()

        h_batch, s_batch = asyncio.run(scenario(True))
        h_single, s_single = asyncio.run(scenario(False))
        assert h_batch == h_single
        for field in ("puts", "hits", "misses", "resident"):
            assert s_batch[field] == s_single[field], field

    def test_get_many_returns_results_in_input_order(self):
        async def scenario():
            store = ShardedPolicyStore.build("lru", 16, shards=4)
            keys = [7, 3, 7, 11, 3]
            await store.put_many(keys, [f"v{k}" for k in keys])
            results = await store.get_many(keys)
            assert [v for _, v in results] == ["v7", "v3", "v7", "v11", "v3"]
            assert all(hit for hit, _ in results)

        asyncio.run(scenario())


class TestMergedAccounting:
    def test_stats_merge_and_per_shard_section(self):
        async def scenario():
            store = ShardedPolicyStore.build("heatsink", 20, shards=4, seed=1)
            for key in range(120):
                await store.put(key, key)
            for key in range(60):
                await store.get(key)
            snap = await store.stats()
            assert snap["shards"] == 4
            assert snap["capacity"] == 20
            assert len(snap["per_shard"]) == 4
            assert snap["gets"] == 60 and snap["puts"] == 120
            assert snap["hits"] == sum(s["hits"] for s in snap["per_shard"])
            assert snap["misses"] == sum(s["misses"] for s in snap["per_shard"])
            assert snap["resident"] == sum(s["resident"] for s in snap["per_shard"])
            assert snap["accesses"] == snap["hits"] + snap["misses"] == 180
            assert 0.0 <= snap["sink_occupancy"] <= 1.0

        asyncio.run(scenario())

    def test_metrics_registry_has_per_shard_gauges(self):
        async def scenario():
            store = ShardedPolicyStore.build("heatsink", 16, shards=2, seed=0)
            for key in range(40):
                await store.put(key, key)
            text = await store.metrics_text()
            for shard in ("0", "1"):
                assert f'repro_shard_resident_pages{{shard="{shard}"}}' in text
                assert f'repro_shard_capacity_slots{{shard="{shard}"}}' in text
                assert f'repro_shard_sink_occupancy_ratio{{shard="{shard}"}}' in text
            assert "repro_shards 2" in text
            assert "repro_ops_total" in text

        asyncio.run(scenario())

    def test_build_rejects_bad_shard_counts(self):
        with pytest.raises(ConfigurationError):
            ShardedPolicyStore.build("lru", 8, shards=0)
        with pytest.raises(ConfigurationError):
            ShardedPolicyStore.build("lru", 2, shards=3)
