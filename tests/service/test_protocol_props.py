"""Property-based wire-protocol tests (hypothesis).

Two contracts the rest of the robustness layer leans on:

1. **Round-trip identity**: ``decode(encode(x)) == x`` for every valid
   request and response — the codec never loses or reshapes data.
2. **Total decoding**: ``decode_*`` over arbitrary byte garbage — random
   binary, truncated frames, bit-flipped frames (exactly what the chaos
   proxy produces), oversized lines — either returns a value or raises
   :class:`~repro.errors.ProtocolError`. Nothing else ever escapes, which
   is what lets the server answer garbage instead of dying on it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    Request,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

# JSON-able payloads (finite floats only: NaN breaks equality, and the
# wire format should stay standard JSON anyway).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)

keys = st.integers(min_value=0, max_value=2**63 - 1)

requests = st.one_of(
    st.builds(Request, st.just("GET"), key=keys),
    st.builds(Request, st.just("DEL"), key=keys),
    st.builds(Request, st.just("PUT"), key=keys, value=json_values),
    st.builds(Request, st.sampled_from(["STATS", "PING"])),
)


class TestRoundTrip:
    @given(requests)
    def test_request_round_trip(self, req):
        line = encode_request(req)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_request(line) == req

    @given(st.dictionaries(st.text(max_size=10), json_values, max_size=6))
    def test_response_round_trip(self, payload):
        assert decode_response(encode_response(payload)) == payload

    @given(requests)
    def test_encoding_is_deterministic(self, req):
        assert encode_request(req) == encode_request(req)


class TestTotalDecoding:
    """decode_* must raise ProtocolError or return — never anything else."""

    @given(st.binary(max_size=200))
    def test_arbitrary_bytes(self, garbage):
        for decode in (decode_request, decode_response):
            try:
                decode(garbage)
            except ProtocolError:
                pass

    @given(requests, st.data())
    def test_truncated_frames(self, req, data):
        # what a peer sees when the chaos proxy truncates mid-frame
        line = encode_request(req)
        cut = data.draw(st.integers(min_value=0, max_value=len(line) - 1))
        try:
            decode_request(line[:cut])
        except ProtocolError:
            pass

    @given(requests, st.data())
    @settings(max_examples=200)
    def test_corrupted_frames(self, req, data):
        # byte flips in the frame body (framing newline preserved), the
        # chaos proxy's `corrupt` action
        line = bytearray(encode_request(req))
        flips = data.draw(st.integers(min_value=1, max_value=4))
        for _ in range(flips):
            pos = data.draw(st.integers(min_value=0, max_value=len(line) - 2))
            byte = data.draw(st.integers(min_value=0, max_value=255).filter(lambda b: b != 0x0A))
            line[pos] = byte
        try:
            result = decode_request(bytes(line))
        except ProtocolError:
            pass
        else:
            assert isinstance(result, Request)  # corrupted into a different valid request


class TestLineCap:
    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request(Request("PUT", key=1, value="x" * MAX_LINE_BYTES))

    def test_oversized_decode_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"a" * (MAX_LINE_BYTES + 1))

    def test_just_under_the_cap_round_trips(self):
        # largest payload whose encoded line stays below the cap
        req = Request("PUT", key=1, value="x" * (MAX_LINE_BYTES - 64))
        assert decode_request(encode_request(req)) == req

    @given(st.integers(min_value=0, max_value=8))
    def test_cap_boundary_is_exact(self, slack):
        # encoded length == MAX_LINE_BYTES must be rejected, one byte less accepted
        overhead = len(encode_request(Request("PUT", key=1, value=""))) - 1
        value = "x" * (MAX_LINE_BYTES - overhead - 1 - slack)
        line = encode_request(Request("PUT", key=1, value=value))
        assert len(line) <= MAX_LINE_BYTES
        with pytest.raises(ProtocolError):
            encode_request(Request("PUT", key=1, value="x" * (MAX_LINE_BYTES - overhead)))
