"""Property-based wire-protocol tests (hypothesis).

Two contracts the rest of the robustness layer leans on:

1. **Round-trip identity**: ``decode(encode(x)) == x`` for every valid
   request and response — the codec never loses or reshapes data.
2. **Total decoding**: ``decode_*`` over arbitrary byte garbage — random
   binary, truncated frames, bit-flipped frames (exactly what the chaos
   proxy produces), oversized lines — either returns a value or raises
   :class:`~repro.errors.ProtocolError`. Nothing else ever escapes, which
   is what lets the server answer garbage instead of dying on it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.service.framing import FrameSplitter
from repro.service.protocol import (
    BINARY_HEADER_SIZE,
    FRAME_BINARY,
    MAX_BATCH_KEYS,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    FRAMES,
    Request,
    decode_frame,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
)

# JSON-able payloads (finite floats only: NaN breaks equality, and the
# wire format should stay standard JSON anyway).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)

keys = st.integers(min_value=0, max_value=2**63 - 1)

key_batches = st.lists(keys, min_size=1, max_size=8).map(tuple)


def _mput(key_tuple, values):
    return Request("MPUT", keys=key_tuple, values=tuple(values[: len(key_tuple)]))


requests = st.one_of(
    st.builds(Request, st.just("GET"), key=keys),
    st.builds(Request, st.just("DEL"), key=keys),
    st.builds(Request, st.just("PUT"), key=keys, value=json_values),
    st.builds(Request, st.just("MGET"), keys=key_batches),
    st.builds(
        _mput,
        key_batches,
        st.lists(json_values, min_size=8, max_size=8),
    ),
    st.builds(Request, st.just("HELLO"), frame=st.none() | st.sampled_from(FRAMES)),
    st.builds(Request, st.sampled_from(["STATS", "PING"])),
)


class TestRoundTrip:
    @given(requests)
    def test_request_round_trip(self, req):
        line = encode_request(req)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_request(line) == req

    @given(st.dictionaries(st.text(max_size=10), json_values, max_size=6))
    def test_response_round_trip(self, payload):
        assert decode_response(encode_response(payload)) == payload

    @given(requests)
    def test_encoding_is_deterministic(self, req):
        assert encode_request(req) == encode_request(req)


class TestBinaryRoundTrip:
    @given(requests)
    def test_request_round_trips_through_splitter(self, req):
        raw = encode_request(req, frame=FRAME_BINARY)
        (frame,) = FrameSplitter().feed(raw)
        assert frame.binary and frame.raw == raw
        assert decode_request(frame.payload) == req

    @given(st.dictionaries(st.text(max_size=10), json_values, max_size=6))
    def test_frame_codec_identity(self, payload):
        raw = encode_frame(payload)
        assert raw[0] == 0xB1
        assert int.from_bytes(raw[1:BINARY_HEADER_SIZE], "big") == len(raw) - BINARY_HEADER_SIZE
        assert decode_frame(raw) == payload

    @given(st.dictionaries(st.text(max_size=10), json_values, max_size=6))
    def test_response_round_trips_binary(self, payload):
        raw = encode_response(payload, frame=FRAME_BINARY)
        assert decode_frame(raw) == payload

    @given(requests)
    def test_binary_encoding_is_deterministic(self, req):
        assert encode_request(req, frame=FRAME_BINARY) == encode_request(
            req, frame=FRAME_BINARY
        )

    @given(requests, st.data())
    def test_every_proper_prefix_is_rejected(self, req, data):
        raw = encode_request(req, frame=FRAME_BINARY)
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        with pytest.raises(ProtocolError):
            decode_frame(raw[:cut])

    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_total(self, garbage):
        try:
            decode_frame(garbage)
        except ProtocolError:
            pass


class TestTotalDecoding:
    """decode_* must raise ProtocolError or return — never anything else."""

    @given(st.binary(max_size=200))
    def test_arbitrary_bytes(self, garbage):
        for decode in (decode_request, decode_response):
            try:
                decode(garbage)
            except ProtocolError:
                pass

    @given(requests, st.data())
    def test_truncated_frames(self, req, data):
        # what a peer sees when the chaos proxy truncates mid-frame
        line = encode_request(req)
        cut = data.draw(st.integers(min_value=0, max_value=len(line) - 1))
        try:
            decode_request(line[:cut])
        except ProtocolError:
            pass

    @given(requests, st.data())
    @settings(max_examples=200)
    def test_corrupted_frames(self, req, data):
        # byte flips in the frame body (framing newline preserved), the
        # chaos proxy's `corrupt` action
        line = bytearray(encode_request(req))
        flips = data.draw(st.integers(min_value=1, max_value=4))
        for _ in range(flips):
            pos = data.draw(st.integers(min_value=0, max_value=len(line) - 2))
            byte = data.draw(st.integers(min_value=0, max_value=255).filter(lambda b: b != 0x0A))
            line[pos] = byte
        try:
            result = decode_request(bytes(line))
        except ProtocolError:
            pass
        else:
            assert isinstance(result, Request)  # corrupted into a different valid request


class TestLineCap:
    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request(Request("PUT", key=1, value="x" * MAX_LINE_BYTES))

    def test_oversized_decode_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"a" * (MAX_LINE_BYTES + 1))

    def test_just_under_the_cap_round_trips(self):
        # largest payload whose encoded line stays below the cap
        req = Request("PUT", key=1, value="x" * (MAX_LINE_BYTES - 64))
        assert decode_request(encode_request(req)) == req

    def test_oversized_binary_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request(
                Request("PUT", key=1, value="x" * MAX_FRAME_BYTES), frame=FRAME_BINARY
            )

    def test_oversized_binary_decode_rejected(self):
        # header honestly declaring an oversized body must be refused
        # before any body bytes are trusted
        length = MAX_FRAME_BYTES
        frame = bytes([0xB1]) + length.to_bytes(4, "big") + b"x" * 8
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(frame)

    def test_oversized_batch_rejected(self):
        too_many = list(range(MAX_BATCH_KEYS + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_request(
                b'{"op": "MGET", "keys": ' + str(too_many).encode() + b"}"
            )

    @given(st.integers(min_value=0, max_value=8))
    def test_cap_boundary_is_exact(self, slack):
        # encoded length == MAX_LINE_BYTES must be rejected, one byte less accepted
        overhead = len(encode_request(Request("PUT", key=1, value=""))) - 1
        value = "x" * (MAX_LINE_BYTES - overhead - 1 - slack)
        line = encode_request(Request("PUT", key=1, value=value))
        assert len(line) <= MAX_LINE_BYTES
        with pytest.raises(ProtocolError):
            encode_request(Request("PUT", key=1, value="x" * (MAX_LINE_BYTES - overhead)))
